package halo

import (
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/nodeaware/stencil/internal/part"
)

func fill(d *Domain, q int, f func(x, y, z int) uint32) {
	r := d.Radius
	for z := -r; z < d.Size.Z+r; z++ {
		for y := -r; y < d.Size.Y+r; y++ {
			for x := -r; x < d.Size.X+r; x++ {
				binary.LittleEndian.PutUint32(d.At(q, x, y, z), f(x, y, z))
			}
		}
	}
}

func read(d *Domain, q, x, y, z int) uint32 {
	return binary.LittleEndian.Uint32(d.At(q, x, y, z))
}

// enc gives every interior coordinate a unique value.
func enc(x, y, z int) uint32 {
	return uint32((x+8)<<16 | (y+8)<<8 | (z + 8))
}

func TestRegions(t *testing.T) {
	d := NewDomain(part.Dim3{X: 8, Y: 6, Z: 4}, 2, 1, 4, false)
	// +x face send region: last 2 interior columns.
	s := d.SendRegion(part.Dim3{X: 1})
	if s.Lo != (part.Dim3{X: 6, Y: 0, Z: 0}) || s.Hi != (part.Dim3{X: 8, Y: 6, Z: 4}) {
		t.Errorf("+x send region = %+v", s)
	}
	// +x recv region: exterior columns.
	r := d.RecvRegion(part.Dim3{X: 1})
	if r.Lo != (part.Dim3{X: 8, Y: 0, Z: 0}) || r.Hi != (part.Dim3{X: 10, Y: 6, Z: 4}) {
		t.Errorf("+x recv region = %+v", r)
	}
	// -y face.
	s = d.SendRegion(part.Dim3{Y: -1})
	if s.Lo != (part.Dim3{}) || s.Hi != (part.Dim3{X: 8, Y: 2, Z: 4}) {
		t.Errorf("-y send region = %+v", s)
	}
	r = d.RecvRegion(part.Dim3{Y: -1})
	if r.Lo != (part.Dim3{X: 0, Y: -2, Z: 0}) || r.Hi != (part.Dim3{X: 8, Y: 0, Z: 4}) {
		t.Errorf("-y recv region = %+v", r)
	}
	// Corner (+x,+y,+z): r^3 cells.
	c := d.SendRegion(part.Dim3{X: 1, Y: 1, Z: 1})
	if c.Cells() != 8 {
		t.Errorf("corner cells = %d, want 8", c.Cells())
	}
}

func TestHaloBytes(t *testing.T) {
	d := NewDomain(part.Dim3{X: 10, Y: 20, Z: 30}, 3, 4, 4, false)
	// +x face: 3*20*30 cells * 4 quantities * 4 bytes.
	if got := d.HaloBytes(part.Dim3{X: 1}); got != 3*20*30*4*4 {
		t.Errorf("+x halo bytes = %d", got)
	}
	// Edge (x,y): 3*3*30 cells.
	if got := d.HaloBytes(part.Dim3{X: 1, Y: -1}); got != 3*3*30*4*4 {
		t.Errorf("xy edge halo bytes = %d", got)
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	size := part.Dim3{X: 6, Y: 5, Z: 4}
	src := NewDomain(size, 2, 3, 4, true)
	dst := NewDomain(size, 2, 3, 4, true)
	for q := 0; q < 3; q++ {
		fill(src, q, func(x, y, z int) uint32 { return enc(x, y, z) + uint32(q)<<24 })
	}
	for _, dir := range part.Directions26() {
		buf := make([]byte, src.HaloBytes(dir))
		n := src.Pack(buf, dir)
		if n != int64(len(buf)) {
			t.Fatalf("pack returned %d, want %d", n, len(buf))
		}
		// The receiver unpacks into the halo on the opposite side.
		neg := part.Dim3{X: -dir.X, Y: -dir.Y, Z: -dir.Z}
		dst.Unpack(buf, neg)
		// Verify every halo cell matches the corresponding source interior
		// cell: dst's recv region for neg maps to src's send region for dir.
		sreg := src.SendRegion(dir)
		dreg := dst.RecvRegion(neg)
		sx, sy, sz := sreg.Hi.X-sreg.Lo.X, sreg.Hi.Y-sreg.Lo.Y, sreg.Hi.Z-sreg.Lo.Z
		dx, dy, dz := dreg.Hi.X-dreg.Lo.X, dreg.Hi.Y-dreg.Lo.Y, dreg.Hi.Z-dreg.Lo.Z
		if sx != dx || sy != dy || sz != dz {
			t.Fatalf("dir %v: region shapes differ: send %dx%dx%d recv %dx%dx%d", dir, sx, sy, sz, dx, dy, dz)
		}
		for q := 0; q < 3; q++ {
			for z := 0; z < sz; z++ {
				for y := 0; y < sy; y++ {
					for x := 0; x < sx; x++ {
						want := read(src, q, sreg.Lo.X+x, sreg.Lo.Y+y, sreg.Lo.Z+z)
						got := read(dst, q, dreg.Lo.X+x, dreg.Lo.Y+y, dreg.Lo.Z+z)
						if got != want {
							t.Fatalf("dir %v q %d cell (%d,%d,%d): got %x want %x", dir, q, x, y, z, got, want)
						}
					}
				}
			}
		}
	}
}

func TestPackDoesNotReadHalo(t *testing.T) {
	d := NewDomain(part.Dim3{X: 4, Y: 4, Z: 4}, 1, 1, 4, true)
	fill(d, 0, func(x, y, z int) uint32 {
		if x < 0 || x >= 4 || y < 0 || y >= 4 || z < 0 || z >= 4 {
			return 0xdeadbeef // halo poison
		}
		return enc(x, y, z)
	})
	for _, dir := range part.Directions26() {
		buf := make([]byte, d.HaloBytes(dir))
		d.Pack(buf, dir)
		for i := 0; i+4 <= len(buf); i += 4 {
			if binary.LittleEndian.Uint32(buf[i:]) == 0xdeadbeef {
				t.Fatalf("dir %v: pack leaked halo poison", dir)
			}
		}
	}
}

func TestSelfExchangePeriodic(t *testing.T) {
	d := NewDomain(part.Dim3{X: 5, Y: 4, Z: 3}, 1, 2, 4, true)
	for q := 0; q < 2; q++ {
		fill(d, q, func(x, y, z int) uint32 { return enc(x, y, z) + uint32(q)<<24 })
	}
	// Self-exchange in +x: my +x halo receives my own -x-adjacent interior
	// (periodic wrap).
	d.SelfExchange(part.Dim3{X: 1})
	for q := 0; q < 2; q++ {
		for z := 0; z < 3; z++ {
			for y := 0; y < 4; y++ {
				got := read(d, q, 5, y, z) // halo cell just past x max
				want := enc(0, y, z) + uint32(q)<<24
				if got != want {
					t.Fatalf("halo (5,%d,%d) = %x, want wrap of x=0 (%x)", y, z, got, want)
				}
			}
		}
	}
	// And -x: halo at x=-1 receives interior x=4.
	d.SelfExchange(part.Dim3{X: -1})
	if got, want := read(d, 0, -1, 2, 1), enc(4, 2, 1); got != want {
		t.Fatalf("halo (-1,2,1) = %x, want %x", got, want)
	}
}

func TestSelfExchangeDiagonal(t *testing.T) {
	d := NewDomain(part.Dim3{X: 4, Y: 4, Z: 4}, 1, 1, 4, true)
	fill(d, 0, func(x, y, z int) uint32 { return enc(x, y, z) })
	d.SelfExchange(part.Dim3{X: 1, Y: 1})
	// Corner halo (4,4,z) should hold interior (0,0,z).
	for z := 0; z < 4; z++ {
		if got, want := read(d, 0, 4, 4, z), enc(0, 0, z); got != want {
			t.Fatalf("edge halo (4,4,%d) = %x, want %x", z, got, want)
		}
	}
}

func TestTimeOnlyMode(t *testing.T) {
	d := NewDomain(part.Dim3{X: 512, Y: 512, Z: 512}, 2, 4, 4, false)
	if d.Real() {
		t.Error("time-only domain claims real data")
	}
	// Pack/unpack/self-exchange report sizes without touching memory.
	b := d.Pack(nil, part.Dim3{X: 1})
	if b != 2*512*512*4*4 {
		t.Errorf("time-only pack bytes = %d", b)
	}
	if d.Unpack(nil, part.Dim3{X: 1}) != b {
		t.Error("unpack size mismatch")
	}
	if d.SelfExchange(part.Dim3{X: 1}) != b {
		t.Error("self-exchange size mismatch")
	}
	if d.AllocBytes() != int64(516*516*516)*4*4 {
		t.Errorf("alloc bytes = %d", d.AllocBytes())
	}
}

func TestMaxHaloBytes(t *testing.T) {
	d := NewDomain(part.Dim3{X: 100, Y: 10, Z: 10}, 1, 1, 4, false)
	// Largest face is y/z-normal: 100*10 cells.
	got := d.MaxHaloBytes(part.Directions26())
	if got != 100*10*1*4 {
		t.Errorf("MaxHaloBytes = %d, want %d", got, 100*10*4)
	}
}

func TestExchangeVolume(t *testing.T) {
	// Fig 5: subdomains of MxNxP exchange an MxN face in z, MxP in y.
	a := part.Dim3{X: 3, Y: 5, Z: 7}
	if got := ExchangeVolume(a, part.Dim3{Z: 1}, 1, 1, 4); got != 3*5*4 {
		t.Errorf("z face volume = %d", got)
	}
	if got := ExchangeVolume(a, part.Dim3{Y: 1}, 1, 1, 4); got != 3*7*4 {
		t.Errorf("y face volume = %d", got)
	}
	if got := ExchangeVolume(a, part.Dim3{X: 1}, 2, 4, 4); got != 2*5*7*4*4 {
		t.Errorf("x face volume r=2 q=4 = %d", got)
	}
}

func TestPackBufferTooSmallPanics(t *testing.T) {
	d := NewDomain(part.Dim3{X: 4, Y: 4, Z: 4}, 1, 1, 4, true)
	defer func() {
		if recover() == nil {
			t.Error("undersized pack buffer did not panic")
		}
	}()
	d.Pack(make([]byte, 4), part.Dim3{X: 1})
}

func TestAtOutOfRangePanics(t *testing.T) {
	d := NewDomain(part.Dim3{X: 4, Y: 4, Z: 4}, 1, 1, 4, true)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range At did not panic")
		}
	}()
	d.At(0, 6, 0, 0)
}

// Property: for random domain shapes and all 26 directions, pack-then-unpack
// into a second identical domain reproduces the source region exactly.
func TestPackUnpackProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		size := part.Dim3{X: rng.Intn(6) + 2, Y: rng.Intn(6) + 2, Z: rng.Intn(6) + 2}
		radius := rng.Intn(2) + 1
		q := rng.Intn(3) + 1
		src := NewDomain(size, radius, q, 4, true)
		dst := NewDomain(size, radius, q, 4, true)
		for qi := 0; qi < q; qi++ {
			fill(src, qi, func(x, y, z int) uint32 { return rng.Uint32() })
		}
		dir := part.Directions26()[rng.Intn(26)]
		buf := make([]byte, src.HaloBytes(dir))
		src.Pack(buf, dir)
		neg := part.Dim3{X: -dir.X, Y: -dir.Y, Z: -dir.Z}
		dst.Unpack(buf, neg)
		// Re-pack dst's halo by packing a fresh buffer from src and compare.
		buf2 := make([]byte, len(buf))
		src.Pack(buf2, dir)
		for i := range buf {
			if buf[i] != buf2[i] {
				return false
			}
		}
		// Every byte of the unpacked halo equals the packed stream.
		reg := dst.RecvRegion(neg)
		pos := 0
		ok := true
		for qi := 0; qi < q; qi++ {
			for z := reg.Lo.Z; z < reg.Hi.Z && ok; z++ {
				for y := reg.Lo.Y; y < reg.Hi.Y && ok; y++ {
					for x := reg.Lo.X; x < reg.Hi.X; x++ {
						cell := dst.At(qi, x, y, z)
						for b := 0; b < 4; b++ {
							if cell[b] != buf[pos] {
								ok = false
								break
							}
							pos++
						}
						if !ok {
							break
						}
					}
				}
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: total halo bytes over 26 directions equals the shell volume
// decomposition: faces + edges + corners.
func TestHaloBytesDecompositionProperty(t *testing.T) {
	f := func(a, b, c, rr uint8) bool {
		size := part.Dim3{X: int(a%20) + 1, Y: int(b%20) + 1, Z: int(c%20) + 1}
		r := int(rr%3) + 1
		d := NewDomain(size, r, 1, 4, false)
		var total int64
		for _, dir := range part.Directions26() {
			total += d.HaloBytes(dir)
		}
		sx, sy, sz := int64(size.X), int64(size.Y), int64(size.Z)
		R := int64(r)
		faces := 2 * R * (sx*sy + sy*sz + sx*sz)
		edges := 4 * R * R * (sx + sy + sz)
		corners := int64(8) * R * R * R
		return total == (faces+edges+corners)*4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSnapshotRestore: a snapshot taken at one state restores interiors AND
// halos byte-exactly after both were overwritten.
func TestSnapshotRestore(t *testing.T) {
	d := NewDomain(part.Dim3{X: 6, Y: 5, Z: 4}, 1, 2, 4, true)
	for q := 0; q < 2; q++ {
		fill(d, q, func(x, y, z int) uint32 { return enc(x, y, z) + uint32(q)<<24 })
	}
	snap := d.Snapshot(nil)
	// Corrupt everything, including the halo ring.
	for q := 0; q < 2; q++ {
		fill(d, q, func(x, y, z int) uint32 { return 0xdeadbeef })
	}
	d.Restore(snap)
	for q := 0; q < 2; q++ {
		r := d.Radius
		for z := -r; z < d.Size.Z+r; z++ {
			for y := -r; y < d.Size.Y+r; y++ {
				for x := -r; x < d.Size.X+r; x++ {
					if got, want := read(d, q, x, y, z), enc(x, y, z)+uint32(q)<<24; got != want {
						t.Fatalf("q%d (%d,%d,%d): got %#x want %#x", q, x, y, z, got, want)
					}
				}
			}
		}
	}
}

// TestSnapshotReuse: passing the previous snapshot back in reuses its
// backing storage instead of reallocating.
func TestSnapshotReuse(t *testing.T) {
	d := NewDomain(part.Dim3{X: 4, Y: 4, Z: 4}, 1, 1, 4, true)
	fill(d, 0, enc)
	s1 := d.Snapshot(nil)
	fill(d, 0, func(x, y, z int) uint32 { return enc(x, y, z) + 1 })
	s2 := d.Snapshot(s1)
	if &s2[0][0] != &s1[0][0] {
		t.Error("Snapshot reallocated despite matching shape")
	}
	d.Restore(s2)
	if got := read(d, 0, 0, 0, 0); got != enc(0, 0, 0)+1 {
		t.Errorf("restored value %#x, want %#x", got, enc(0, 0, 0)+1)
	}
}

// TestSnapshotTimeOnly: without real data both operations are no-ops.
func TestSnapshotTimeOnly(t *testing.T) {
	d := NewDomain(part.Dim3{X: 4, Y: 4, Z: 4}, 1, 1, 4, false)
	if snap := d.Snapshot(nil); snap != nil {
		t.Errorf("time-only Snapshot returned %v, want nil", snap)
	}
	d.Restore(nil) // must not panic
}

// TestRestoreShapeMismatchPanics: restoring a wrong-shaped snapshot is a bug.
func TestRestoreShapeMismatchPanics(t *testing.T) {
	d := NewDomain(part.Dim3{X: 4, Y: 4, Z: 4}, 1, 2, 4, true)
	defer func() {
		if recover() == nil {
			t.Error("Restore accepted a wrong-shaped snapshot")
		}
	}()
	d.Restore([][]byte{{1, 2, 3}})
}
