package halo

import "github.com/nodeaware/stencil/internal/part"

// Interior/border split for compute/communication overlap.
//
// A stencil update of radius R reads R cells around each updated cell. Cells
// of the *core* — the interior shrunk by R per axis — read only interior
// cells, so their update never touches a halo and can run while halo
// exchanges are still in flight. The remaining interior cells form the
// *border*: their updates read halo cells and must wait for verified halo
// arrival. The split is exact: Core ∪ Border = interior, disjoint.

// Core returns the interior region whose radius-R stencil reads no halo
// cell: [Radius, Size-Radius) per axis. When the domain is too thin on any
// axis (Size ≤ 2*Radius) the core is empty and every interior cell is
// border.
func (d *Domain) Core() Region {
	lo := part.Dim3{X: d.Radius, Y: d.Radius, Z: d.Radius}
	hi := part.Dim3{X: d.Size.X - d.Radius, Y: d.Size.Y - d.Radius, Z: d.Size.Z - d.Radius}
	if hi.X <= lo.X || hi.Y <= lo.Y || hi.Z <= lo.Z {
		return Region{}
	}
	return Region{Lo: lo, Hi: hi}
}

// CoreCells returns the number of core cells (0 for thin domains).
func (d *Domain) CoreCells() int { return d.Core().Cells() }

// BorderCells returns the number of interior cells outside the core.
func (d *Domain) BorderCells() int { return d.Size.Vol() - d.CoreCells() }

// CoreBytes returns the payload size of a core update across all quantities.
func (d *Domain) CoreBytes() int64 {
	return int64(d.CoreCells()) * int64(d.ElemSize) * int64(d.Quantities)
}

// BorderBytes returns the payload size of a border update across all
// quantities.
func (d *Domain) BorderBytes() int64 {
	return int64(d.BorderCells()) * int64(d.ElemSize) * int64(d.Quantities)
}
