// Package halo implements subdomain storage and halo-region geometry: the 26
// direction vectors' send/receive regions, packing of non-contiguous 3D
// regions into dense buffers (paper Fig 6), unpacking, and self-exchange.
//
// A Domain stores one or more quantities over an interior of Size cells plus
// a halo shell of width Radius, in XYZ storage order (x contiguous). Packing
// walks the region row by row, copying contiguous x-runs, exactly as the
// CUDA pack kernel does. Domains optionally carry real backing bytes; in
// time-only mode all geometry and byte counting still work but no data
// moves.
package halo

import (
	"fmt"
	"hash/fnv"
	"sync"

	"github.com/nodeaware/stencil/internal/part"
)

// Region is a half-open box [Lo, Hi) in local domain coordinates, where the
// interior spans [0, Size) and the halo extends Radius cells beyond.
type Region struct {
	Lo, Hi part.Dim3
}

// Cells returns the number of grid points in the region.
func (r Region) Cells() int {
	return (r.Hi.X - r.Lo.X) * (r.Hi.Y - r.Lo.Y) * (r.Hi.Z - r.Lo.Z)
}

// Domain is one subdomain's storage.
type Domain struct {
	Size       part.Dim3 // interior extent
	Radius     int
	Quantities int
	ElemSize   int // bytes per grid value (4 for single precision)

	stride  part.Dim3 // allocated extents including halo
	data    [][]byte  // one allocation per quantity; nil in time-only mode
	perCell int       // ElemSize (cached for clarity at call sites)
}

// NewDomain allocates a subdomain. If real is false the domain is time-only:
// geometry and sizes work but no bytes are stored.
func NewDomain(size part.Dim3, radius, quantities, elemSize int, real bool) *Domain {
	if size.X < 1 || size.Y < 1 || size.Z < 1 {
		panic(fmt.Sprintf("halo: empty domain %v", size))
	}
	if radius < 0 || quantities < 1 || elemSize < 1 {
		panic(fmt.Sprintf("halo: bad params r=%d q=%d e=%d", radius, quantities, elemSize))
	}
	d := &Domain{
		Size:       size,
		Radius:     radius,
		Quantities: quantities,
		ElemSize:   elemSize,
		stride:     part.Dim3{X: size.X + 2*radius, Y: size.Y + 2*radius, Z: size.Z + 2*radius},
		perCell:    elemSize,
	}
	if real {
		n := d.stride.Vol() * elemSize
		d.data = make([][]byte, quantities)
		for q := range d.data {
			d.data[q] = make([]byte, n)
		}
	}
	return d
}

// Real reports whether the domain carries backing bytes.
func (d *Domain) Real() bool { return d.data != nil }

// AllocBytes returns the total allocation size of the domain including halo,
// across all quantities.
func (d *Domain) AllocBytes() int64 {
	return int64(d.stride.Vol()) * int64(d.ElemSize) * int64(d.Quantities)
}

// offset returns the byte offset of cell (x,y,z) — local coordinates, halo
// at negative and >= Size indices — within one quantity's allocation.
func (d *Domain) offset(x, y, z int) int {
	r := d.Radius
	return (((z+r)*d.stride.Y+(y+r))*d.stride.X + (x + r)) * d.ElemSize
}

// checkCoord panics if the coordinate is outside the allocated shell.
func (d *Domain) checkCoord(x, y, z int) {
	r := d.Radius
	if x < -r || x >= d.Size.X+r || y < -r || y >= d.Size.Y+r || z < -r || z >= d.Size.Z+r {
		panic(fmt.Sprintf("halo: coordinate (%d,%d,%d) outside domain %v radius %d", x, y, z, d.Size, r))
	}
}

// At returns the elem bytes of cell (x,y,z) of quantity q as a slice into
// the backing store. Panics in time-only mode or out of range.
func (d *Domain) At(q, x, y, z int) []byte {
	d.checkCoord(x, y, z)
	off := d.offset(x, y, z)
	return d.data[q][off : off+d.ElemSize]
}

// SendRegion returns the interior strip that must be sent to the neighbor in
// direction dir: Radius cells deep along each nonzero direction component,
// the full interior along zero components.
func (d *Domain) SendRegion(dir part.Dim3) Region {
	return d.regionFor(dir, false)
}

// RecvRegion returns the exterior halo shell filled by the neighbor in
// direction dir.
func (d *Domain) RecvRegion(dir part.Dim3) Region {
	return d.regionFor(dir, true)
}

func (d *Domain) regionFor(dir part.Dim3, exterior bool) Region {
	r := d.Radius
	lo := [3]int{}
	hi := [3]int{}
	size := [3]int{d.Size.X, d.Size.Y, d.Size.Z}
	dv := [3]int{dir.X, dir.Y, dir.Z}
	for a := 0; a < 3; a++ {
		switch dv[a] {
		case 0:
			lo[a], hi[a] = 0, size[a]
		case 1:
			if exterior {
				lo[a], hi[a] = size[a], size[a]+r
			} else {
				lo[a], hi[a] = size[a]-r, size[a]
			}
		case -1:
			if exterior {
				lo[a], hi[a] = -r, 0
			} else {
				lo[a], hi[a] = 0, r
			}
		default:
			panic(fmt.Sprintf("halo: direction component %d", dv[a]))
		}
	}
	return Region{
		Lo: part.Dim3{X: lo[0], Y: lo[1], Z: lo[2]},
		Hi: part.Dim3{X: hi[0], Y: hi[1], Z: hi[2]},
	}
}

// HaloBytes returns the message size for an exchange in direction dir: the
// region cells times element size times quantity count.
func (d *Domain) HaloBytes(dir part.Dim3) int64 {
	return int64(d.SendRegion(dir).Cells()) * int64(d.ElemSize) * int64(d.Quantities)
}

// forEachRow invokes fn with the byte offset and length of every contiguous
// x-run in the region, for quantity q.
func (d *Domain) forEachRow(reg Region, fn func(off, n int)) {
	rowBytes := (reg.Hi.X - reg.Lo.X) * d.ElemSize
	for z := reg.Lo.Z; z < reg.Hi.Z; z++ {
		for y := reg.Lo.Y; y < reg.Hi.Y; y++ {
			fn(d.offset(reg.Lo.X, y, z), rowBytes)
		}
	}
}

// Pack copies the send region for dir, all quantities, into dst (the dense
// buffer layout of Fig 6: quantity-major, then z, y, x). It returns the
// number of bytes packed. In time-only mode (or with nil dst) it returns the
// byte count without copying.
func (d *Domain) Pack(dst []byte, dir part.Dim3) int64 {
	reg := d.SendRegion(dir)
	total := d.HaloBytes(dir)
	if d.data == nil || dst == nil {
		return total
	}
	if int64(len(dst)) < total {
		panic(fmt.Sprintf("halo: pack buffer %d < message %d", len(dst), total))
	}
	pos := 0
	for q := 0; q < d.Quantities; q++ {
		src := d.data[q]
		d.forEachRow(reg, func(off, n int) {
			copy(dst[pos:pos+n], src[off:off+n])
			pos += n
		})
	}
	return total
}

// Unpack copies a dense buffer produced by the neighbor's Pack into the
// receive halo for dir. Buffer layout must match Pack's.
func (d *Domain) Unpack(src []byte, dir part.Dim3) int64 {
	reg := d.RecvRegion(dir)
	total := int64(reg.Cells()) * int64(d.ElemSize) * int64(d.Quantities)
	if d.data == nil || src == nil {
		return total
	}
	if int64(len(src)) < total {
		panic(fmt.Sprintf("halo: unpack buffer %d < message %d", len(src), total))
	}
	pos := 0
	for q := 0; q < d.Quantities; q++ {
		dst := d.data[q]
		d.forEachRow(reg, func(off, n int) {
			copy(dst[off:off+n], src[pos:pos+n])
			pos += n
		})
	}
	return total
}

// SelfExchange fills the receive halo in direction dir from this domain's
// own interior, implementing the KERNEL method's periodic wrap: the halo in
// direction dir receives the send region of direction -dir.
func (d *Domain) SelfExchange(dir part.Dim3) int64 {
	neg := part.Dim3{X: -dir.X, Y: -dir.Y, Z: -dir.Z}
	src := d.SendRegion(neg)
	dst := d.RecvRegion(dir)
	total := int64(dst.Cells()) * int64(d.ElemSize) * int64(d.Quantities)
	if d.data == nil {
		return total
	}
	if src.Cells() != dst.Cells() {
		panic("halo: self-exchange region mismatch")
	}
	// Gather rows pairwise: both regions have identical per-axis extents.
	// Row offsets are identical across quantities, so compute them once, in
	// pooled scratch — SelfExchange runs on every KERNEL-method exchange
	// (possibly on parallel payload workers, hence sync.Pool, not a field).
	sc := offsetsPool.Get().(*offsetsScratch)
	sc.src = appendRowOffsets(sc.src[:0], d, src)
	sc.dst = appendRowOffsets(sc.dst[:0], d, dst)
	rowBytes := (src.Hi.X - src.Lo.X) * d.ElemSize
	for q := 0; q < d.Quantities; q++ {
		buf := d.data[q]
		for i := range sc.src {
			copy(buf[sc.dst[i]:sc.dst[i]+rowBytes], buf[sc.src[i]:sc.src[i]+rowBytes])
		}
	}
	offsetsPool.Put(sc)
	return total
}

// offsetsScratch holds reusable row-offset slices for SelfExchange.
type offsetsScratch struct{ src, dst []int }

var offsetsPool = sync.Pool{New: func() any { return new(offsetsScratch) }}

func appendRowOffsets(offs []int, d *Domain, reg Region) []int {
	d.forEachRow(reg, func(off, _ int) { offs = append(offs, off) })
	return offs
}

// RegionChecksum returns a 64-bit FNV-1a hash over a region's bytes (all
// quantities, rows in region order — the order Pack serializes). A send
// region and the matching receive region on the neighbor hash equal exactly
// when the transfer landed intact, which is what the exchange layer's
// end-to-end halo verification compares. Time-only domains return 0.
func (d *Domain) RegionChecksum(reg Region) uint64 {
	if d.data == nil {
		return 0
	}
	h := fnv.New64a()
	for q := 0; q < d.Quantities; q++ {
		buf := d.data[q]
		d.forEachRow(reg, func(off, n int) { h.Write(buf[off : off+n]) })
	}
	return h.Sum64()
}

// Fingerprint returns a 64-bit FNV-1a hash over the domain's complete backing
// store (all quantities, interior and halo). Two domains that went through
// byte-identical histories hash equal; the determinism regression test
// compares sequential and parallel runs with it. Time-only domains hash their
// geometry alone.
func (d *Domain) Fingerprint() uint64 {
	h := fnv.New64a()
	var dims [6]byte
	for i, v := range []int{d.Size.X, d.Size.Y, d.Size.Z} {
		dims[2*i] = byte(v)
		dims[2*i+1] = byte(v >> 8)
	}
	h.Write(dims[:])
	for _, q := range d.data {
		h.Write(q)
	}
	return h.Sum64()
}

// Snapshot deep-copies the domain's complete backing store (all quantities,
// interior and halo) into dst, reusing dst's allocations when the shapes
// match, and returns the snapshot. Time-only domains return nil. The
// exchange layer's checkpoint scheduler calls this at the virtual completion
// time of the checkpoint's D2H copy, so the snapshot captures exactly the
// state the copy would have carried.
func (d *Domain) Snapshot(dst [][]byte) [][]byte {
	if d.data == nil {
		return nil
	}
	if len(dst) != len(d.data) {
		dst = make([][]byte, len(d.data))
	}
	for q, src := range d.data {
		if len(dst[q]) != len(src) {
			dst[q] = make([]byte, len(src))
		}
		copy(dst[q], src)
	}
	return dst
}

// Restore overwrites the backing store from a Snapshot result — interior
// and halo both, so any corruption from a rolled-back iteration is wiped.
// Time-only domains ignore the (nil) snapshot; a shape mismatch panics.
func (d *Domain) Restore(snap [][]byte) {
	if d.data == nil {
		if snap != nil {
			panic("halo: Restore of a real snapshot into a time-only domain")
		}
		return
	}
	if len(snap) != len(d.data) {
		panic(fmt.Sprintf("halo: Restore quantity mismatch: snapshot %d, domain %d", len(snap), len(d.data)))
	}
	for q, src := range snap {
		if len(src) != len(d.data[q]) {
			panic(fmt.Sprintf("halo: Restore size mismatch on quantity %d: snapshot %d, domain %d", q, len(src), len(d.data[q])))
		}
		copy(d.data[q], src)
	}
}

// MaxHaloBytes returns the largest single-direction message size across the
// given directions; the exchange layer sizes its staging buffers with this.
func (d *Domain) MaxHaloBytes(dirs []part.Dim3) int64 {
	var maxB int64
	for _, dir := range dirs {
		if b := d.HaloBytes(dir); b > maxB {
			maxB = b
		}
	}
	return maxB
}

// ExchangeVolume returns the bytes exchanged between two adjacent subdomains
// of the given sizes in direction dir (from a's perspective): it is a's send
// region size, which must equal b's receive region size along the shared
// face, edge, or corner. Used to build the placement flow matrix (Fig 5).
func ExchangeVolume(a part.Dim3, dir part.Dim3, radius, quantities, elemSize int) int64 {
	return int64(part.HaloCells(a, dir, radius)) * int64(quantities) * int64(elemSize)
}
