package halo

import (
	"testing"

	"github.com/nodeaware/stencil/internal/part"
)

func BenchmarkPackFace(b *testing.B) {
	d := NewDomain(part.Dim3{X: 128, Y: 128, Z: 128}, 2, 4, 4, true)
	dir := part.Dim3{X: 1}
	buf := make([]byte, d.HaloBytes(dir))
	b.SetBytes(d.HaloBytes(dir))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Pack(buf, dir)
	}
}

func BenchmarkUnpackFace(b *testing.B) {
	d := NewDomain(part.Dim3{X: 128, Y: 128, Z: 128}, 2, 4, 4, true)
	dir := part.Dim3{X: 1}
	buf := make([]byte, d.HaloBytes(dir))
	b.SetBytes(d.HaloBytes(dir))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Unpack(buf, dir)
	}
}

func BenchmarkSelfExchange(b *testing.B) {
	d := NewDomain(part.Dim3{X: 128, Y: 128, Z: 128}, 2, 4, 4, true)
	dir := part.Dim3{Z: 1}
	b.SetBytes(d.HaloBytes(dir))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.SelfExchange(dir)
	}
}
