package placement

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/nodeaware/stencil/internal/machine"
	"github.com/nodeaware/stencil/internal/nvml"
	"github.com/nodeaware/stencil/internal/part"
	"github.com/nodeaware/stencil/internal/sim"
)

func summitBW(t *testing.T) [][]float64 {
	t.Helper()
	e := sim.NewEngine()
	m := machine.NewSummit(e, 1)
	return nvml.Discover(m.Nodes[0]).Bandwidth
}

func TestFlowMatrixSymmetric(t *testing.T) {
	h, err := part.NewHier(part.Dim3{X: 1440, Y: 1452, Z: 700}, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	w := FlowMatrix(h, part.Dim3{}, 2, 4, 4)
	if d := MaxAbsDiff(w); d != 0 {
		t.Errorf("flow matrix asymmetric by %g", d)
	}
	if TotalFlow(w) <= 0 {
		t.Error("no flow in 6-subdomain node")
	}
}

func TestFlowMatrixShapes(t *testing.T) {
	// Fig 5: subdomains [0,0,0] and [0,1,0] share an MxN face; [0,0,0] and
	// [1,0,0] share an MxP face; the volumes must reflect the shapes.
	// Domain 1440x1452x700 over 6 GPUs gives grid [2 3 1]: subdomains
	// 720x484x700.
	h, err := part.NewHier(part.Dim3{X: 1440, Y: 1452, Z: 700}, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	if h.GPUDims != (part.Dim3{X: 2, Y: 3, Z: 1}) {
		t.Fatalf("GPU grid = %v, want [2 3 1]", h.GPUDims)
	}
	w := FlowMatrix(h, part.Dim3{}, 1, 1, 4)
	// Subdomain 0 = gpu index (0,0,0). Its x-pair partner is rank 1: with x
	// extent 2, BOTH +x and -x (periodic wrap) land on rank 1, two 484x700
	// faces, plus the four (±1,0,±1) edges whose z component wraps to self.
	wantX := float64((2*484*700 + 4*484) * 4)
	// Its +y partner is rank 2: one 720x700 face plus the two (0,1,±1)
	// edges.
	wantY := float64((720*700 + 2*720) * 4)
	if w[0][1] != wantX {
		t.Errorf("x-pair flow = %g, want %g", w[0][1], wantX)
	}
	if w[0][2] != wantY {
		t.Errorf("y-pair flow = %g, want %g", w[0][2], wantY)
	}
	// The doubled x faces dominate: the QAP should see the x pair as the
	// hottest link.
	if w[0][1] <= w[0][2] {
		t.Errorf("x-pair flow %g should exceed single y face %g", w[0][1], w[0][2])
	}
}

func TestFlowMatrixIntraNodeWrap(t *testing.T) {
	// Single node: periodic wrap along a split axis stays on the node, so
	// GPUs 0 and 2 in a [3 1 1]... use 3 GPUs in x: ranks 0 and 2 are
	// neighbors via both +x and wrap -x.
	h, err := part.NewHier(part.Dim3{X: 300, Y: 100, Z: 100}, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if h.GPUDims != (part.Dim3{X: 3, Y: 1, Z: 1}) {
		t.Fatalf("grid = %v", h.GPUDims)
	}
	w := FlowMatrix(h, part.Dim3{}, 1, 1, 4)
	if w[0][2] <= 0 {
		t.Error("periodic wrap flow 0->2 missing")
	}
	// 0->1 direct and 0->2 wrap cross the same face size: equal flow.
	if w[0][1] != w[0][2] {
		t.Errorf("wrap flow %g != direct flow %g", w[0][2], w[0][1])
	}
}

func TestDistanceMatrix(t *testing.T) {
	bw := [][]float64{{100, 50}, {50, 100}}
	d := DistanceMatrix(bw)
	if d[0][0] != 0 || d[1][1] != 0 {
		t.Error("diagonal must be zero")
	}
	if d[0][1] != 0.02 {
		t.Errorf("d[0][1] = %g, want 0.02", d[0][1])
	}
}

func TestSolveTinyKnownOptimum(t *testing.T) {
	// Two heavy-flow subdomains (0,1) and two GPUs pairs: (0,1) fast, the
	// rest slow. Optimal assignment keeps 0,1 on the fast pair.
	w := [][]float64{
		{0, 10, 0, 0},
		{10, 0, 0, 0},
		{0, 0, 0, 1},
		{0, 0, 1, 0},
	}
	// GPUs: 0-1 fast (distance 1), everything else slow (distance 10).
	d := [][]float64{
		{0, 1, 10, 10},
		{1, 0, 10, 10},
		{10, 10, 0, 10},
		{10, 10, 10, 0},
	}
	f, c := Solve(w, d)
	// Optimal cost: heavy pair on fast link (2*10*1) + light pair on a slow
	// link (2*1*10) = 40.
	if c != 40 {
		t.Errorf("optimal cost = %g, want 40", c)
	}
	// Subdomains 0 and 1 must land on GPUs 0 and 1.
	g01 := map[int]bool{f[0]: true, f[1]: true}
	if !g01[0] || !g01[1] {
		t.Errorf("heavy pair assigned to GPUs %d,%d, want 0,1", f[0], f[1])
	}
}

func TestSolveBeatsTrivialOnAdversarialCase(t *testing.T) {
	// Trivial puts heavy flow on a slow link; Solve must find better.
	w := [][]float64{
		{0, 0, 9},
		{0, 0, 0},
		{9, 0, 0},
	}
	d := [][]float64{
		{0, 1, 5},
		{1, 0, 1},
		{5, 1, 0},
	}
	f, c := Solve(w, d)
	tc := Cost(w, d, Trivial(3))
	if c >= tc {
		t.Errorf("solver cost %g not better than trivial %g (f=%v)", c, tc, f)
	}
}

func TestPlaceFig11Scenario(t *testing.T) {
	// The paper's Fig 11 domain: 1440x1452x700 on one 6-GPU node produces
	// 720x484x700 subdomains in a [2 3 1] grid. Node-aware placement must
	// strictly beat the trivial one on the Summit bandwidth matrix.
	h, err := part.NewHier(part.Dim3{X: 1440, Y: 1452, Z: 700}, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	bw := summitBW(t)
	aware := Place(h, part.Dim3{}, bw, 2, 4, 4, true)
	trivial := Place(h, part.Dim3{}, bw, 2, 4, 4, false)
	if aware.Cost >= trivial.Cost {
		t.Errorf("node-aware cost %g not better than trivial %g", aware.Cost, trivial.Cost)
	}
	w := FlowMatrix(h, part.Dim3{}, 2, 4, 4)
	d := DistanceMatrix(bw)
	imp := Improvement(w, d, aware)
	if imp <= 0.05 {
		t.Errorf("improvement %.3f too small for the worst-case aspect scenario", imp)
	}
	t.Logf("Fig 11 QAP cost improvement: %.1f%%", imp*100)
}

func TestPlaceCubicalNoEffect(t *testing.T) {
	// Near-cubical subdomains exchange similar volumes in all directions;
	// placement may help only marginally (§IV-B: "data placement has no
	// performance effect" for small aspect ratios). The solver should still
	// never be worse than trivial.
	h, err := part.NewHier(part.Dim3{X: 960, Y: 960, Z: 960}, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	bw := summitBW(t)
	aware := Place(h, part.Dim3{}, bw, 2, 4, 4, true)
	trivial := Place(h, part.Dim3{}, bw, 2, 4, 4, false)
	if aware.Cost > trivial.Cost {
		t.Errorf("aware %g worse than trivial %g", aware.Cost, trivial.Cost)
	}
}

func TestNewAssignmentValidation(t *testing.T) {
	a := NewAssignment([]int{2, 0, 1}, 7)
	if a.GPUToSub[2] != 0 || a.GPUToSub[0] != 1 || a.GPUToSub[1] != 2 {
		t.Errorf("inverse = %v", a.GPUToSub)
	}
	defer func() {
		if recover() == nil {
			t.Error("non-permutation accepted")
		}
	}()
	NewAssignment([]int{0, 0, 1}, 0)
}

// Property: Solve returns a valid permutation whose cost is <= the cost of
// any of a sample of random permutations, and <= trivial.
func TestSolveOptimalityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(4) + 2
		w := make([][]float64, n)
		d := make([][]float64, n)
		for i := 0; i < n; i++ {
			w[i] = make([]float64, n)
			d[i] = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				fw := rng.Float64() * 100
				fd := rng.Float64() + 0.01
				w[i][j], w[j][i] = fw, fw
				d[i][j], d[j][i] = fd, fd
			}
		}
		f1, c := Solve(w, d)
		seen := make([]bool, n)
		for _, g := range f1 {
			if g < 0 || g >= n || seen[g] {
				return false
			}
			seen[g] = true
		}
		if c > Cost(w, d, Trivial(n))+1e-9 {
			return false
		}
		for k := 0; k < 20; k++ {
			if c > Cost(w, d, rng.Perm(n))+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: scaling the flow matrix scales the optimal cost linearly and
// never changes which assignments are optimal-cost-equivalent.
func TestSolveScaleInvarianceProperty(t *testing.T) {
	f := func(seed int64, scale uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := float64(scale%20) + 1
		n := 4
		w := make([][]float64, n)
		ws := make([][]float64, n)
		d := make([][]float64, n)
		for i := 0; i < n; i++ {
			w[i] = make([]float64, n)
			ws[i] = make([]float64, n)
			d[i] = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				fw := rng.Float64() * 10
				fd := rng.Float64() + 0.1
				w[i][j], w[j][i] = fw, fw
				ws[i][j], ws[j][i] = fw*k, fw*k
				d[i][j], d[j][i] = fd, fd
			}
		}
		_, c1 := Solve(w, d)
		_, c2 := Solve(ws, d)
		return almostEq(c2, c1*k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func almostEq(a, b float64) bool {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	scale := a
	if b > a {
		scale = b
	}
	if scale < 1 {
		scale = 1
	}
	return diff <= 1e-9*scale
}

// uniformEvictCase builds a tiny symmetric QAP instance for eviction tests:
// 4 subdomains, ring flow, uniform distances except the diagonal.
func uniformEvictCase() (w, d [][]float64) {
	n := 4
	w = make([][]float64, n)
	d = make([][]float64, n)
	for i := 0; i < n; i++ {
		w[i] = make([]float64, n)
		d[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			if i != j {
				d[i][j] = 1
			}
		}
	}
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		w[i][j], w[j][i] = 1, 1
	}
	return w, d
}

// TestPlaceEvictKeepsSurvivors: survivors stay put; only the orphan moves,
// to the least-occupied surviving GPU.
func TestPlaceEvictKeepsSurvivors(t *testing.T) {
	w, d := uniformEvictCase()
	cur := []int{0, 1, 2, 3}
	alive := []bool{true, true, true, false} // GPU 3 died
	f, cost, err := PlaceEvict(w, d, cur, alive)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if f[i] != cur[i] {
			t.Errorf("survivor %d moved: %d -> %d", i, cur[i], f[i])
		}
	}
	if f[3] == 3 || !alive[f[3]] {
		t.Errorf("orphan placed on %d, want a surviving GPU", f[3])
	}
	if want := CostEvict(w, d, f); cost != want {
		t.Errorf("returned cost %g != recomputed %g", cost, want)
	}
}

// TestPlaceEvictDeterministicTieBreak: with symmetric occupancy and cost the
// lowest GPU index wins, and repeated runs agree.
func TestPlaceEvictDeterministicTieBreak(t *testing.T) {
	w, d := uniformEvictCase()
	// Everything is symmetric for the orphan from subdomain 0's view.
	cur := []int{0, 1, 2, 3}
	alive := []bool{false, true, true, true}
	f1, _, err := PlaceEvict(w, d, cur, alive)
	if err != nil {
		t.Fatal(err)
	}
	f2, _, _ := PlaceEvict(w, d, cur, alive)
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatalf("non-deterministic eviction: %v vs %v", f1, f2)
		}
	}
	// Cost ties (uniform distance, equal occupancy): the orphan of GPU 0
	// must land on the lowest-indexed survivor.
	if f1[0] != 1 {
		t.Errorf("orphan went to GPU %d, want 1 (lowest-index tie break)", f1[0])
	}
}

// TestPlaceEvictPrefersLowOccupancy: a second loss spreads orphans across
// distinct survivors before doubling anyone up.
func TestPlaceEvictPrefersLowOccupancy(t *testing.T) {
	w, d := uniformEvictCase()
	cur := []int{0, 1, 2, 3}
	alive := []bool{true, true, false, false}
	f, _, err := PlaceEvict(w, d, cur, alive)
	if err != nil {
		t.Fatal(err)
	}
	occ := map[int]int{}
	for _, g := range f {
		occ[g]++
	}
	if occ[0] != 2 || occ[1] != 2 {
		t.Errorf("occupancy %v, want 2 on each survivor", occ)
	}
}

// TestPlaceEvictPinnedAndMinimizesCost: cur[i] == -1 entries are pinned
// off-node and ignored; among equal-occupancy candidates the marginal QAP
// cost decides.
func TestPlaceEvictPinnedAndMinimizesCost(t *testing.T) {
	w, d := uniformEvictCase()
	// Make GPU 1 far from everything, GPU 0 close: the orphan exchanging
	// with subdomain 3 (on GPU 3) should prefer GPU 0.
	for j := 0; j < 4; j++ {
		if j != 1 {
			d[1][j], d[j][1] = 10, 10
		}
	}
	cur := []int{-1, -1, 2, 3} // subs 0,1 already migrated off node
	alive := []bool{true, true, false, true}
	f, _, err := PlaceEvict(w, d, cur, alive)
	if err != nil {
		t.Fatal(err)
	}
	if f[0] != -1 || f[1] != -1 {
		t.Errorf("pinned entries moved: %v", f)
	}
	if f[2] != 0 {
		t.Errorf("orphan went to GPU %d, want 0 (cheaper marginal cost)", f[2])
	}
}

// TestPlaceEvictNoSurvivors: all-dead nodes report an error so the caller
// can fall back to cross-node migration.
func TestPlaceEvictNoSurvivors(t *testing.T) {
	w, d := uniformEvictCase()
	if _, _, err := PlaceEvict(w, d, []int{0, 1, 2, 3}, []bool{false, false, false, false}); err == nil {
		t.Error("PlaceEvict succeeded with no surviving GPU")
	}
}

// TestEvictAssignment: non-bijective mappings wrap without the permutation
// panic; GPUToSub keeps the lowest-indexed occupant and -1 for empty GPUs.
func TestEvictAssignment(t *testing.T) {
	a := EvictAssignment([]int{0, 1, 1, -1}, 7)
	if a.Cost != 7 {
		t.Errorf("cost %g, want 7", a.Cost)
	}
	if got := a.GPUToSub; got[0] != 0 || got[1] != 1 || got[2] != -1 || got[3] != -1 {
		t.Errorf("GPUToSub = %v, want [0 1 -1 -1]", got)
	}
}

// TestCostEvictMatchesCostOnPermutations: on a bijection the eviction cost
// equals the standard QAP objective.
func TestCostEvictMatchesCostOnPermutations(t *testing.T) {
	w, d := uniformEvictCase()
	f := []int{2, 0, 3, 1}
	if got, want := CostEvict(w, d, f), Cost(w, d, f); got != want {
		t.Errorf("CostEvict %g != Cost %g on a permutation", got, want)
	}
}
