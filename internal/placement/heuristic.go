package placement

// The exhaustive QAP solver is fine for the 4-8 GPUs of today's nodes (the
// paper's argument, §III-B), but a node shape with 12 or 16 accelerators
// would make n! intractable. SolveHeuristic provides a deterministic
// multi-start hill climber with pairwise-swap moves: each start seeds a
// greedy construction from a different high-flow subdomain, then 2-opt swaps
// run to a local minimum. SolveAuto picks exhaustive search when n is small
// enough and the heuristic otherwise.

// exhaustiveLimit is the largest n solved exactly (8! = 40320 evaluations).
const exhaustiveLimit = 8

// SolveAuto returns the exact optimum for small instances and the heuristic
// answer for larger ones.
func SolveAuto(w, d [][]float64) ([]int, float64) {
	if len(w) <= exhaustiveLimit {
		return Solve(w, d)
	}
	return SolveHeuristic(w, d)
}

// SolveHeuristic runs n deterministic greedy-plus-2-opt starts and returns
// the best assignment found.
func SolveHeuristic(w, d [][]float64) ([]int, float64) {
	n := len(w)
	if n == 0 {
		return nil, 0
	}
	best := Trivial(n)
	bestCost := Cost(w, d, best)
	for start := 0; start < n; start++ {
		f := greedyConstruct(w, d, start)
		c := twoOpt(w, d, f)
		if c < bestCost {
			bestCost = c
			copy(best, f)
		}
	}
	return best, bestCost
}

// greedyConstruct seeds subdomain `seed` on the GPU with the best total
// connectivity, then repeatedly places the unplaced subdomain with the most
// flow to already-placed ones onto the free GPU minimizing incremental cost.
func greedyConstruct(w, d [][]float64, seed int) []int {
	n := len(w)
	f := make([]int, n)
	for i := range f {
		f[i] = -1
	}
	usedGPU := make([]bool, n)

	// Put the seed subdomain on the GPU with the smallest total distance
	// (best-connected device).
	bestGPU, bestScore := 0, 0.0
	for g := 0; g < n; g++ {
		var s float64
		for h := 0; h < n; h++ {
			s += d[g][h]
		}
		if g == 0 || s < bestScore {
			bestGPU, bestScore = g, s
		}
	}
	f[seed] = bestGPU
	usedGPU[bestGPU] = true

	for placed := 1; placed < n; placed++ {
		// Most-connected unplaced subdomain relative to placed ones.
		cand, candFlow := -1, -1.0
		for s := 0; s < n; s++ {
			if f[s] >= 0 {
				continue
			}
			var fl float64
			for t := 0; t < n; t++ {
				if f[t] >= 0 {
					fl += w[s][t] + w[t][s]
				}
			}
			if fl > candFlow {
				cand, candFlow = s, fl
			}
		}
		// Cheapest free GPU for it.
		bestG, bestC := -1, 0.0
		for g := 0; g < n; g++ {
			if usedGPU[g] {
				continue
			}
			var c float64
			for t := 0; t < n; t++ {
				if f[t] >= 0 {
					c += w[cand][t]*d[g][f[t]] + w[t][cand]*d[f[t]][g]
				}
			}
			if bestG < 0 || c < bestC {
				bestG, bestC = g, c
			}
		}
		f[cand] = bestG
		usedGPU[bestG] = true
	}
	return f
}

// twoOpt swaps pairs of assignments while any swap improves the cost,
// returning the final cost. Deterministic: scans pairs in index order and
// applies the first improving swap each pass.
func twoOpt(w, d [][]float64, f []int) float64 {
	cost := Cost(w, d, f)
	improved := true
	for improved {
		improved = false
		for i := 0; i < len(f); i++ {
			for j := i + 1; j < len(f); j++ {
				f[i], f[j] = f[j], f[i]
				if c := Cost(w, d, f); c < cost {
					cost = c
					improved = true
				} else {
					f[i], f[j] = f[j], f[i]
				}
			}
		}
	}
	return cost
}
