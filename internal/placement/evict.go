package placement

// This file implements eviction-aware re-placement: after a permanent device
// loss the recovery layer re-runs phase 2 over the *surviving* capability
// matrix. Unlike the setup-time QAP, the result need not be a bijection —
// with fewer GPUs than subdomains, survivors multi-occupy — and subdomains
// whose device survived must stay put, because moving them would charge
// migration traffic for no benefit. Only the orphans are re-placed.

import "fmt"

// PlaceEvict re-places one node's subdomains after device loss. cur[i] is
// subdomain i's current GPU; cur[i] == -1 marks a subdomain that has already
// migrated off this node (it is left alone and contributes no cost).
// alive[g] marks surviving GPUs. Subdomains on surviving GPUs keep their
// placement; each orphan — a subdomain whose cur GPU is dead — is assigned,
// in ascending subdomain order, to the surviving GPU with the lowest
// occupancy, breaking ties by the marginal QAP cost of the move against the
// mapping built so far, then by lowest GPU index. The greedy order makes the
// result deterministic. Returns the new mapping and its cost, or an error
// when no GPU survives.
func PlaceEvict(w, d [][]float64, cur []int, alive []bool) ([]int, float64, error) {
	if len(w) != len(cur) {
		panic(fmt.Sprintf("placement: flow %d and mapping %d dimensions differ", len(w), len(cur)))
	}
	f := append([]int(nil), cur...)
	occ := make([]int, len(alive))
	for _, g := range f {
		if g >= 0 && alive[g] {
			occ[g]++
		}
	}
	for i, g := range f {
		if g < 0 || alive[g] {
			continue
		}
		best, bestCost := -1, 0.0
		for c := range alive {
			if !alive[c] {
				continue
			}
			mc := marginalCost(w, d, f, i, c)
			if best < 0 || occ[c] < occ[best] ||
				(occ[c] == occ[best] && mc < bestCost) {
				best, bestCost = c, mc
			}
		}
		if best < 0 {
			return nil, 0, fmt.Errorf("placement: no surviving GPU to evict subdomain %d onto", i)
		}
		f[i] = best
		occ[best]++
	}
	return f, CostEvict(w, d, f), nil
}

// marginalCost is the QAP objective contribution of placing subdomain i on
// GPU g given the (partial) mapping f. Terms against other orphans still on
// dead GPUs use the dead GPU's distances — a deterministic approximation
// that resolves as the greedy pass proceeds. Off-node subdomains (f[j] < 0)
// contribute nothing.
func marginalCost(w, d [][]float64, f []int, i, g int) float64 {
	var c float64
	for j := range w {
		if j == i || f[j] < 0 {
			continue
		}
		c += w[i][j]*d[g][f[j]] + w[j][i]*d[f[j]][g]
	}
	return c
}

// CostEvict evaluates the QAP objective for a possibly non-bijective mapping,
// skipping off-node subdomains (f[i] < 0). Co-located subdomains contribute
// zero, like the distance matrix's diagonal.
func CostEvict(w, d [][]float64, f []int) float64 {
	var c float64
	for i := range w {
		for j := range w[i] {
			if i == j || f[i] < 0 || f[j] < 0 {
				continue
			}
			c += w[i][j] * d[f[i]][f[j]]
		}
	}
	return c
}

// EvictAssignment wraps a (generally non-bijective) eviction mapping in an
// Assignment without NewAssignment's permutation check. GPUToSub holds the
// lowest-indexed occupant of each GPU, or -1 for a GPU with none (dead, or
// vacated by eviction).
func EvictAssignment(f []int, cost float64) *Assignment {
	inv := make([]int, len(f))
	for i := range inv {
		inv[i] = -1
	}
	for s, g := range f {
		if g >= 0 && g < len(inv) && inv[g] < 0 {
			inv[g] = s
		}
	}
	out := append([]int(nil), f...)
	return &Assignment{SubToGPU: out, GPUToSub: inv, Cost: cost}
}
