package placement

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomInstance(rng *rand.Rand, n int) (w, d [][]float64) {
	w = make([][]float64, n)
	d = make([][]float64, n)
	for i := 0; i < n; i++ {
		w[i] = make([]float64, n)
		d[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			fw := rng.Float64() * 100
			fd := rng.Float64() + 0.01
			w[i][j], w[j][i] = fw, fw
			d[i][j], d[j][i] = fd, fd
		}
	}
	return w, d
}

func TestHeuristicMatchesExhaustiveSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	exactHits := 0
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		n := rng.Intn(4) + 3 // 3..6
		w, d := randomInstance(rng, n)
		_, optCost := Solve(w, d)
		_, hCost := SolveHeuristic(w, d)
		if hCost < optCost-1e-9 {
			t.Fatalf("heuristic beat the exhaustive optimum: %g < %g", hCost, optCost)
		}
		if hCost <= optCost*1.10+1e-12 {
			exactHits++
		}
	}
	// Multi-start 2-opt should land within 10% of optimal almost always on
	// these tiny instances.
	if exactHits < trials*9/10 {
		t.Errorf("heuristic within 10%% of optimum only %d/%d times", exactHits, trials)
	}
}

func TestHeuristicValidPermutationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(10) + 2
		w, d := randomInstance(rng, n)
		f1, c := SolveHeuristic(w, d)
		seen := make([]bool, n)
		for _, g := range f1 {
			if g < 0 || g >= n || seen[g] {
				return false
			}
			seen[g] = true
		}
		// Never worse than trivial (trivial is one of the climbing outcomes'
		// upper bounds: 2-opt only improves, and best-of includes trivial
		// comparison).
		return c <= Cost(w, d, Trivial(n))+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSolveAutoSwitchesAtLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Small: SolveAuto must equal Solve exactly.
	w, d := randomInstance(rng, 5)
	fa, ca := SolveAuto(w, d)
	_, ce := Solve(w, d)
	if ca != ce {
		t.Errorf("SolveAuto cost %g != exhaustive %g", ca, ce)
	}
	if len(fa) != 5 {
		t.Error("bad assignment length")
	}
	// Large: must terminate quickly and return a valid permutation.
	w, d = randomInstance(rng, 16)
	f16, c16 := SolveAuto(w, d)
	seen := make([]bool, 16)
	for _, g := range f16 {
		if seen[g] {
			t.Fatal("not a permutation")
		}
		seen[g] = true
	}
	if c16 > Cost(w, d, Trivial(16))+1e-9 {
		t.Error("16-GPU heuristic worse than trivial")
	}
}

func TestHeuristicDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	w, d := randomInstance(rng, 12)
	f1, c1 := SolveHeuristic(w, d)
	f2, c2 := SolveHeuristic(w, d)
	if c1 != c2 {
		t.Fatalf("costs differ across runs: %g vs %g", c1, c2)
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatal("assignments differ across runs")
		}
	}
}
