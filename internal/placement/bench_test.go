package placement

import (
	"math/rand"
	"testing"
)

func benchInstance(n int) (w, d [][]float64) {
	rng := rand.New(rand.NewSource(1))
	return randomInstance(rng, n)
}

func BenchmarkSolveExhaustive6(b *testing.B) {
	w, d := benchInstance(6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Solve(w, d)
	}
}

func BenchmarkSolveExhaustive8(b *testing.B) {
	w, d := benchInstance(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Solve(w, d)
	}
}

func BenchmarkSolveHeuristic16(b *testing.B) {
	w, d := benchInstance(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SolveHeuristic(w, d)
	}
}
