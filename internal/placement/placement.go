// Package placement implements the paper's setup phase 2 (§III-B): assigning
// each node's subdomains to its GPUs by solving a quadratic assignment
// problem.
//
// The flow matrix w holds the exchange volume between every pair of
// subdomains on the node (determined by their shapes and adjacency, Fig 5);
// the distance matrix d is the elementwise reciprocal of the GPU-GPU
// bandwidth matrix discovered from node topology. The QAP minimizes
//
//	sum_{i,j} w[i][j] * d[f(i)][f(j)]
//
// over bijections f from subdomains to GPUs. As in the paper, the solver
// checks all GPU permutations: nodes have few GPUs, so exhaustive search is
// cheap (6! = 720).
package placement

import (
	"fmt"
	"math"

	"github.com/nodeaware/stencil/internal/halo"
	"github.com/nodeaware/stencil/internal/part"
)

// FlowMatrix computes the pairwise exchange volume in bytes between the
// GPU-space subdomains of one node. Entry [a][b] is the number of bytes
// subdomain a sends to subdomain b per exchange, summed over all directions
// whose periodic neighbor lands on the same node.
func FlowMatrix(h *part.Hier, node part.Dim3, radius, quantities, elemSize int) [][]float64 {
	return FlowMatrixBoundary(h, node, radius, quantities, elemSize, false)
}

// FlowMatrixBoundary is FlowMatrix with selectable boundary conditions: with
// open=true, steps off the domain edge exchange nothing instead of wrapping.
func FlowMatrixBoundary(h *part.Hier, node part.Dim3, radius, quantities, elemSize int, open bool) [][]float64 {
	n := h.GPUDims.Vol()
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
	}
	for a := 0; a < n; a++ {
		ga := h.GPUIndex(a)
		_, size := h.Subdomain(node, ga)
		global := h.GlobalIndex(node, ga)
		for _, dir := range part.Directions26() {
			var nb part.Dim3
			if open {
				var ok bool
				nb, ok = h.NeighborOpen(global, dir)
				if !ok {
					continue
				}
			} else {
				nb = h.Neighbor(global, dir)
			}
			nbNode, nbGPU := h.Split(nb)
			if nbNode != node {
				continue
			}
			b := h.GPURank(nbGPU)
			if b == a {
				continue // self-exchange stays on one GPU; no link crossed
			}
			w[a][b] += float64(halo.ExchangeVolume(size, dir, radius, quantities, elemSize))
		}
	}
	return w
}

// DistanceMatrix converts a bandwidth matrix (bytes/second) into the QAP
// distance matrix: elementwise reciprocal with a zero diagonal.
func DistanceMatrix(bw [][]float64) [][]float64 {
	n := len(bw)
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			if i == j {
				continue
			}
			if bw[i][j] <= 0 {
				panic(fmt.Sprintf("placement: nonpositive bandwidth %g between GPUs %d,%d", bw[i][j], i, j))
			}
			d[i][j] = 1 / bw[i][j]
		}
	}
	return d
}

// Cost evaluates the QAP objective for assignment f (f[i] = GPU of
// subdomain i).
func Cost(w, d [][]float64, f []int) float64 {
	var c float64
	for i := range w {
		for j := range w[i] {
			if i == j {
				continue
			}
			c += w[i][j] * d[f[i]][f[j]]
		}
	}
	return c
}

// Solve exhaustively searches all assignments and returns the minimizing
// permutation and its cost. Ties resolve to the lexicographically smallest
// permutation, keeping results deterministic.
func Solve(w, d [][]float64) ([]int, float64) {
	n := len(w)
	if n != len(d) {
		panic(fmt.Sprintf("placement: flow %d and distance %d dimensions differ", n, len(d)))
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := make([]int, n)
	copy(best, perm)
	bestCost := Cost(w, d, perm)
	permute(perm, 0, func(p []int) {
		if c := Cost(w, d, p); c < bestCost {
			bestCost = c
			copy(best, p)
		}
	})
	return best, bestCost
}

// permute enumerates permutations of p[k:] in lexicographic-ish recursive
// order, invoking fn for each complete permutation.
func permute(p []int, k int, fn func([]int)) {
	if k == len(p) {
		fn(p)
		return
	}
	for i := k; i < len(p); i++ {
		p[k], p[i] = p[i], p[k]
		permute(p, k+1, fn)
		p[k], p[i] = p[i], p[k]
	}
}

// Trivial returns the identity assignment: subdomain i on GPU i (the paper's
// baseline, where the linearized subdomain id maps directly to a device).
func Trivial(n int) []int {
	f := make([]int, n)
	for i := range f {
		f[i] = i
	}
	return f
}

// Assignment pairs a subdomain→GPU mapping with its cost, and provides the
// inverse lookup.
type Assignment struct {
	SubToGPU []int
	GPUToSub []int
	Cost     float64
}

// NewAssignment validates f as a permutation and builds the inverse map.
func NewAssignment(f []int, cost float64) *Assignment {
	inv := make([]int, len(f))
	seen := make([]bool, len(f))
	for i := range inv {
		inv[i] = -1
	}
	for s, g := range f {
		if g < 0 || g >= len(f) || seen[g] {
			panic(fmt.Sprintf("placement: %v is not a permutation", f))
		}
		seen[g] = true
		inv[g] = s
	}
	out := make([]int, len(f))
	copy(out, f)
	return &Assignment{SubToGPU: out, GPUToSub: inv, Cost: cost}
}

// Improvement returns the relative cost reduction of this assignment versus
// the trivial one: (trivialCost - Cost) / trivialCost. Zero when the trivial
// placement is already optimal or all costs are zero.
func Improvement(w, d [][]float64, a *Assignment) float64 {
	tc := Cost(w, d, Trivial(len(w)))
	if tc == 0 {
		return 0
	}
	return (tc - a.Cost) / tc
}

// Place runs the full phase-2 pipeline for one node: build the flow matrix,
// invert the bandwidth matrix, and solve the QAP. nodeAware=false returns
// the trivial placement (the Fig 11 baseline).
func Place(h *part.Hier, node part.Dim3, bw [][]float64, radius, quantities, elemSize int, nodeAware bool) *Assignment {
	return PlaceBoundary(h, node, bw, radius, quantities, elemSize, nodeAware, false)
}

// PlaceBoundary is Place with selectable boundary conditions.
func PlaceBoundary(h *part.Hier, node part.Dim3, bw [][]float64, radius, quantities, elemSize int, nodeAware, open bool) *Assignment {
	w := FlowMatrixBoundary(h, node, radius, quantities, elemSize, open)
	d := DistanceMatrix(bw)
	if !nodeAware {
		f := Trivial(len(w))
		return NewAssignment(f, Cost(w, d, f))
	}
	f, c := SolveAuto(w, d)
	return NewAssignment(f, c)
}

// TotalFlow sums all off-diagonal flow; useful to sanity-check scenarios.
func TotalFlow(w [][]float64) float64 {
	var s float64
	for i := range w {
		for j := range w[i] {
			if i != j {
				s += w[i][j]
			}
		}
	}
	return s
}

// MaxAbsDiff reports the largest elementwise asymmetry |w[i][j]-w[j][i]|;
// stencil exchange volumes are symmetric, so this should be ~0.
func MaxAbsDiff(w [][]float64) float64 {
	var m float64
	for i := range w {
		for j := range w[i] {
			m = math.Max(m, math.Abs(w[i][j]-w[j][i]))
		}
	}
	return m
}
