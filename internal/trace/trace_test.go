package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/nodeaware/stencil/internal/cudart"
)

func sampleOps() []cudart.OpRecord {
	return []cudart.OpRecord{
		{Kind: cudart.OpKernel, Name: "pack", Device: 0, Stream: "d0.s1", Start: 0.001, End: 0.002, Bytes: 100},
		{Kind: cudart.OpMemcpyD2D, Name: "cp", Device: 0, Stream: "d0.s1", Start: 0.002, End: 0.004, Bytes: 100},
		{Kind: cudart.OpKernel, Name: "unpack", Device: 1, Stream: "d1.s1", Start: 0.004, End: 0.005, Bytes: 100},
		{Kind: cudart.OpMemcpyD2H, Name: "d2h", Device: 1, Stream: "d1.s2", Start: 0.001, End: 0.003, Bytes: 50},
	}
}

func TestSpanAndStats(t *testing.T) {
	tl := New(sampleOps())
	start, end := tl.Span()
	if start != 0.001 || end != 0.005 {
		t.Errorf("span = [%g, %g], want [0.001, 0.005]", start, end)
	}
	s := tl.ComputeStats()
	if s.Ops != 4 || s.Devices != 2 || s.Streams != 3 {
		t.Errorf("stats = %+v", s)
	}
	wantBusy := 0.001 + 0.002 + 0.001 + 0.002
	if diff := s.BusyTime - wantBusy; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("busy = %g, want %g", s.BusyTime, wantBusy)
	}
	if s.Overlap <= 1 {
		t.Errorf("overlap = %g, want > 1 (ops overlap in this sample)", s.Overlap)
	}
	if s.TotalBytes != 350 {
		t.Errorf("bytes = %d", s.TotalBytes)
	}
}

func TestEmptyTimeline(t *testing.T) {
	tl := New(nil)
	if s := tl.ComputeStats(); s.Ops != 0 || s.Overlap != 0 {
		t.Errorf("empty stats = %+v", s)
	}
	var buf bytes.Buffer
	tl.RenderASCII(&buf, 40)
	if !strings.Contains(buf.String(), "empty") {
		t.Error("empty timeline not reported")
	}
}

func TestSortedByDeviceStream(t *testing.T) {
	tl := New(sampleOps())
	for i := 1; i < len(tl.Ops); i++ {
		a, b := tl.Ops[i-1], tl.Ops[i]
		if a.Device > b.Device {
			t.Fatal("not sorted by device")
		}
		if a.Device == b.Device && a.Stream > b.Stream {
			t.Fatal("not sorted by stream")
		}
	}
}

func TestChromeTraceJSON(t *testing.T) {
	tl := New(sampleOps())
	var buf bytes.Buffer
	if err := tl.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			TS    float64 `json:"ts"`
			Dur   float64 `json:"dur"`
			PID   int     `json:"pid"`
			TID   string  `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("events = %d, want 4", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		if ev.Phase != "X" || ev.Dur <= 0 {
			t.Errorf("bad event %+v", ev)
		}
	}
	// Timestamps are rebased to the span start in microseconds.
	first := doc.TraceEvents[0]
	if first.TS != 0 {
		t.Errorf("first event ts = %g, want 0", first.TS)
	}
}

// Every OpKind must render as a real glyph: a '?' in a Gantt chart means a
// kind was added to cudart without a Glyphs entry (this happened with the
// host-side staging copies, which rendered as '?' until OpMemcpyH2H got '=').
func TestGlyphsCoverAllOpKinds(t *testing.T) {
	seen := make(map[byte]cudart.OpKind)
	for k := cudart.OpKind(0); k < cudart.NumOpKinds; k++ {
		g, ok := Glyphs[k.String()]
		if !ok || g == 0 || g == '?' {
			t.Errorf("OpKind %v has no glyph (got %q)", k, g)
			continue
		}
		// Glyphs must also be distinct, or two kinds become indistinguishable
		// in a chart (retransmits masquerading as kernels, say).
		if prev, dup := seen[g]; dup {
			t.Errorf("OpKind %v and %v share glyph %q", prev, k, g)
		}
		seen[g] = k
	}
	if len(Glyphs) != int(cudart.NumOpKinds) {
		t.Errorf("Glyphs has %d entries, want %d (stale entry for a removed kind?)", len(Glyphs), cudart.NumOpKinds)
	}
}

// Protocol activity (retransmitted sends, verification re-exchanges) must be
// visible in the Gantt rendering with its own glyphs.
func TestRenderASCIIProtocolOps(t *testing.T) {
	ops := []cudart.OpRecord{
		{Kind: cudart.OpRetransmit, Name: "mpi.nic", Device: -1, Stream: "wire", Start: 0, End: 0.002, Bytes: 1 << 20},
		{Kind: cudart.OpReExchange, Name: "verify", Device: -1, Stream: "verify", Start: 0.002, End: 0.003, Bytes: 1 << 18},
	}
	var buf bytes.Buffer
	New(ops).RenderASCII(&buf, 40)
	out := buf.String()
	for _, want := range []string{"d-1 wire", "d-1 verify", "R", "X"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestRenderASCII(t *testing.T) {
	tl := New(sampleOps())
	var buf bytes.Buffer
	tl.RenderASCII(&buf, 60)
	out := buf.String()
	for _, want := range []string{"d0.s1", "d1.s1", "d1.s2", "K", "P", "v"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // 3 stream rows + time footer
		t.Errorf("rendered %d lines, want 4:\n%s", len(lines), out)
	}
}

// Two devices running streams with identical names must render as separate
// lanes (rows are keyed by device AND stream, labels carry the device id).
func TestRenderASCIIDuplicateStreamNames(t *testing.T) {
	ops := []cudart.OpRecord{
		{Kind: cudart.OpKernel, Name: "a", Device: 0, Stream: "send", Start: 0, End: 0.001},
		{Kind: cudart.OpMemcpyD2D, Name: "b", Device: 1, Stream: "send", Start: 0, End: 0.001},
	}
	var buf bytes.Buffer
	New(ops).RenderASCII(&buf, 20)
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // 2 lanes + footer, NOT one merged lane
		t.Fatalf("rendered %d lines, want 3:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "d0 send") || !strings.Contains(out, "d1 send") {
		t.Fatalf("lanes not labeled by device:\n%s", out)
	}
	if !strings.Contains(lines[0], "K") || !strings.Contains(lines[1], "P") {
		t.Fatalf("lane glyphs merged:\n%s", out)
	}
}

func TestRenderASCIIWidthGuard(t *testing.T) {
	tl := New(sampleOps())
	for _, width := range []int{-5, 0, 1} {
		var buf bytes.Buffer
		tl.RenderASCII(&buf, width) // must not panic
		if buf.Len() == 0 {
			t.Fatalf("width %d produced no output", width)
		}
	}
}

// A timeline where every op starts and ends at the same instant must render
// without dividing by a zero span, and each op still shows one glyph.
func TestRenderASCIISingleInstant(t *testing.T) {
	ops := []cudart.OpRecord{
		{Kind: cudart.OpKernel, Name: "a", Device: 0, Stream: "s", Start: 0.5, End: 0.5},
		{Kind: cudart.OpMemcpyD2H, Name: "b", Device: 0, Stream: "t", Start: 0.5, End: 0.5},
	}
	var buf bytes.Buffer
	New(ops).RenderASCII(&buf, 30)
	out := buf.String()
	if !strings.Contains(out, "K") || !strings.Contains(out, "v") {
		t.Fatalf("zero-duration ops not rendered:\n%s", out)
	}
}

func TestRenderASCIIZeroSpanTimeline(t *testing.T) {
	var buf bytes.Buffer
	New(nil).RenderASCII(&buf, 0)
	if !strings.Contains(buf.String(), "empty") {
		t.Fatalf("empty timeline with zero width: %q", buf.String())
	}
}

func TestComputeStatsSerialVsParallel(t *testing.T) {
	serial := New([]cudart.OpRecord{
		{Kind: cudart.OpKernel, Device: 0, Stream: "a", Start: 0, End: 1},
		{Kind: cudart.OpKernel, Device: 0, Stream: "a", Start: 1, End: 2},
	})
	if s := serial.ComputeStats(); s.Overlap != 1 {
		t.Fatalf("fully serial overlap = %g, want 1", s.Overlap)
	}
	par := New([]cudart.OpRecord{
		{Kind: cudart.OpKernel, Device: 0, Stream: "a", Start: 0, End: 1},
		{Kind: cudart.OpKernel, Device: 1, Stream: "b", Start: 0, End: 1},
	})
	if s := par.ComputeStats(); s.Overlap != 2 {
		t.Fatalf("fully parallel overlap = %g, want 2", s.Overlap)
	}
}

func TestChromeTraceCounterTracks(t *testing.T) {
	tl := New(sampleOps())
	track := CounterTrack{
		Name:   "n0.nic.out",
		Times:  []float64{0.0005, 0.002, 0.004},
		Values: []float64{0, 0.8, 0.2},
	}
	var buf bytes.Buffer
	if err := tl.WriteChromeTrace(&buf, track); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			PID   int            `json:"pid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	var counters, meta int
	for _, ev := range doc.TraceEvents {
		switch ev.Phase {
		case "C":
			counters++
			if ev.Name != "n0.nic.out" || ev.PID != counterPID {
				t.Errorf("bad counter event %+v", ev)
			}
			if _, ok := ev.Args["value"]; !ok {
				t.Errorf("counter event missing value arg: %+v", ev)
			}
			// The first track sample predates the first op; the whole trace
			// must rebase to it so no timestamp is negative.
			if ev.TS < 0 {
				t.Errorf("negative counter timestamp %g", ev.TS)
			}
		case "M":
			meta++
		case "X":
			if ev.TS < 0 {
				t.Errorf("negative op timestamp %g", ev.TS)
			}
		}
	}
	if counters != 3 || meta != 1 {
		t.Fatalf("got %d counter events, %d metadata events; want 3, 1", counters, meta)
	}
}
