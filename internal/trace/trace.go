// Package trace turns recorded exchange operations into analyzable
// timelines: per-stream lanes, overlap statistics (how much the §III-D
// machinery actually parallelizes), an ASCII Gantt rendering, and Chrome
// trace-event JSON for chrome://tracing / Perfetto.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/nodeaware/stencil/internal/cudart"
)

// Timeline is an ordered set of operation spans.
type Timeline struct {
	Ops []cudart.OpRecord
}

// New builds a timeline from recorded ops, sorted by device, stream, start.
func New(ops []cudart.OpRecord) *Timeline {
	t := &Timeline{Ops: make([]cudart.OpRecord, len(ops))}
	copy(t.Ops, ops)
	sort.Slice(t.Ops, func(i, j int) bool {
		a, b := t.Ops[i], t.Ops[j]
		if a.Device != b.Device {
			return a.Device < b.Device
		}
		if a.Stream != b.Stream {
			return a.Stream < b.Stream
		}
		return a.Start < b.Start
	})
	return t
}

// Span returns the earliest start and latest end across all ops.
func (t *Timeline) Span() (start, end float64) {
	if len(t.Ops) == 0 {
		return 0, 0
	}
	start, end = t.Ops[0].Start, t.Ops[0].End
	for _, op := range t.Ops {
		if op.Start < start {
			start = op.Start
		}
		if op.End > end {
			end = op.End
		}
	}
	return start, end
}

// Stats summarizes the timeline.
type Stats struct {
	Ops        int
	Devices    int
	Streams    int
	Span       float64 // wall span in seconds
	BusyTime   float64 // sum of op durations
	Overlap    float64 // BusyTime / Span: >1 means real parallelism
	TotalBytes int64
}

// ComputeStats derives summary statistics.
func (t *Timeline) ComputeStats() Stats {
	s := Stats{Ops: len(t.Ops)}
	if len(t.Ops) == 0 {
		return s
	}
	devs := make(map[int]struct{})
	streams := make(map[string]struct{})
	start, end := t.Span()
	for _, op := range t.Ops {
		devs[op.Device] = struct{}{}
		streams[op.Stream] = struct{}{}
		s.BusyTime += op.End - op.Start
		s.TotalBytes += op.Bytes
	}
	s.Devices = len(devs)
	s.Streams = len(streams)
	s.Span = end - start
	if s.Span > 0 {
		s.Overlap = s.BusyTime / s.Span
	}
	return s
}

// chromeEvent is one Chrome trace-event ("X" complete events, microsecond
// timestamps).
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur"`
	PID   int            `json:"pid"`
	TID   string         `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// CounterTrack is a step function of (virtual time, value) samples merged
// into the Chrome trace as Perfetto counter events — typically per-link
// utilization from a telemetry recorder's Tracks().
type CounterTrack struct {
	Name   string
	Times  []float64 // seconds, ascending
	Values []float64 // same length as Times
}

// counterPID is the synthetic process id holding all counter tracks, chosen
// far above any real device id so Perfetto groups them in their own lane.
const counterPID = 1000

// WriteChromeTrace emits the timeline as Chrome trace-event JSON: one
// process per device, one thread per stream, plus one "C" counter event per
// sample of each optional counter track. Load the output in chrome://tracing
// or https://ui.perfetto.dev.
func (t *Timeline) WriteChromeTrace(w io.Writer, tracks ...CounterTrack) error {
	start, _ := t.Span()
	for _, tr := range tracks {
		if len(tr.Times) > 0 && tr.Times[0] < start {
			start = tr.Times[0]
		}
	}
	events := make([]chromeEvent, 0, len(t.Ops))
	for _, op := range t.Ops {
		events = append(events, chromeEvent{
			Name:  op.Name,
			Cat:   op.Kind.String(),
			Phase: "X",
			TS:    (op.Start - start) * 1e6,
			Dur:   (op.End - op.Start) * 1e6,
			PID:   op.Device,
			TID:   op.Stream,
			Args:  map[string]any{"bytes": op.Bytes},
		})
	}
	if len(tracks) > 0 {
		events = append(events, chromeEvent{
			Name:  "process_name",
			Phase: "M",
			PID:   counterPID,
			Args:  map[string]any{"name": "link utilization"},
		})
		for _, tr := range tracks {
			for i, ts := range tr.Times {
				events = append(events, chromeEvent{
					Name:  tr.Name,
					Cat:   "counter",
					Phase: "C",
					TS:    (ts - start) * 1e6,
					PID:   counterPID,
					Args:  map[string]any{"value": tr.Values[i]},
				})
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events})
}

// Glyphs maps op kinds to ASCII-chart glyphs. Every cudart.OpKind must have
// an entry (enforced by TestGlyphsCoverAllOpKinds): a '?' in a Gantt chart
// means a new kind was added without a glyph.
var Glyphs = map[string]byte{
	"kernel":     'K',
	"memcpyD2D":  'P',
	"memcpyD2H":  'v',
	"memcpyH2D":  '^',
	"memcpyH2H":  '=',
	"retransmit": 'R',
	"reexchange": 'X',
}

// RenderASCII draws a Gantt chart of the timeline, one row per
// (device, stream) lane, `width` characters across the time span. Rows are
// keyed by device AND stream: two devices may reuse the same stream name,
// and a stream-only key would merge their lanes into one garbled row.
func (t *Timeline) RenderASCII(w io.Writer, width int) {
	if len(t.Ops) == 0 {
		fmt.Fprintln(w, "(empty timeline)")
		return
	}
	if width < 1 {
		width = 1
	}
	start, end := t.Span()
	span := end - start
	if span <= 0 {
		// Single-instant timeline: every op collapses to one glyph cell.
		span = 1
	}
	scale := float64(width) / span

	type rowKey struct {
		device int
		stream string
	}
	var last rowKey
	haveRow := false
	var label string
	var row []byte
	flush := func() {
		if haveRow {
			fmt.Fprintf(w, "%-24s |%s|\n", label, string(row))
		}
	}
	for _, op := range t.Ops {
		k := rowKey{op.Device, op.Stream}
		if !haveRow || k != last {
			flush()
			last = k
			haveRow = true
			label = fmt.Sprintf("d%d %s", op.Device, op.Stream)
			row = []byte(strings.Repeat(" ", width))
		}
		lo := int((op.Start - start) * scale)
		hi := int((op.End - start) * scale)
		if lo >= width {
			lo = width - 1
		}
		if hi >= width {
			hi = width - 1
		}
		if hi < lo {
			hi = lo // zero-duration op still renders one glyph
		}
		g := Glyphs[op.Kind.String()]
		if g == 0 {
			g = '?'
		}
		for i := lo; i <= hi; i++ {
			row[i] = g
		}
	}
	flush()
	fmt.Fprintf(w, "%-24s  0%s%.3f ms\n", "time:", strings.Repeat(" ", maxInt(0, width-12)), span*1e3)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
