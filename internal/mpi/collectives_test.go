package mpi

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/nodeaware/stencil/internal/sim"
)

func runCollective(t *testing.T, nodes, ranksPerNode int, body func(p *sim.Proc, w *World, rank int)) {
	t.Helper()
	e, _, w := setup(nodes, ranksPerNode, false, false)
	for r := 0; r < w.Size(); r++ {
		r := r
		e.Spawn("rank", func(p *sim.Proc) { body(p, w, r) })
	}
	e.Run()
}

func TestAllreduceSum(t *testing.T) {
	for _, cfg := range [][2]int{{1, 1}, {1, 2}, {1, 3}, {1, 6}, {2, 6}, {3, 2}} {
		n := cfg[0] * cfg[1]
		want := float64(n*(n-1)) / 2 // sum of rank ids
		results := make([]float64, n)
		runCollective(t, cfg[0], cfg[1], func(p *sim.Proc, w *World, rank int) {
			results[rank] = w.Allreduce(p, rank, float64(rank), SumOp)
		})
		for r, got := range results {
			if got != want {
				t.Errorf("%dx%d: rank %d sum = %g, want %g", cfg[0], cfg[1], r, got, want)
			}
		}
	}
}

func TestAllreduceMaxMin(t *testing.T) {
	const nodes, rpn = 2, 3
	n := nodes * rpn
	vals := []float64{3, -7, 12, 0.5, 12, -100}
	maxes := make([]float64, n)
	mins := make([]float64, n)
	runCollective(t, nodes, rpn, func(p *sim.Proc, w *World, rank int) {
		maxes[rank] = w.Allreduce(p, rank, vals[rank], MaxOp)
		mins[rank] = w.Allreduce(p, rank, vals[rank], MinOp)
	})
	for r := 0; r < n; r++ {
		if maxes[r] != 12 {
			t.Errorf("rank %d max = %g", r, maxes[r])
		}
		if mins[r] != -100 {
			t.Errorf("rank %d min = %g", r, mins[r])
		}
	}
}

func TestAllreduceNonPowerOfTwo(t *testing.T) {
	// 6 ranks exercises the fold-in/fold-out path (p2=4, rem=2).
	results := make([]float64, 6)
	runCollective(t, 1, 6, func(p *sim.Proc, w *World, rank int) {
		results[rank] = w.Allreduce(p, rank, float64(rank+1), SumOp)
	})
	for r, got := range results {
		if got != 21 {
			t.Errorf("rank %d = %g, want 21", r, got)
		}
	}
}

func TestAllreduceTakesTime(t *testing.T) {
	// Inter-node rounds must cost more than zero virtual time.
	var elapsed sim.Time
	runCollective(t, 4, 1, func(p *sim.Proc, w *World, rank int) {
		t0 := p.Now()
		w.Allreduce(p, rank, 1, SumOp)
		if d := p.Now() - t0; d > elapsed {
			elapsed = d
		}
	})
	if elapsed <= 0 {
		t.Error("allreduce completed in zero virtual time")
	}
}

func TestBcast(t *testing.T) {
	for root := 0; root < 6; root++ {
		results := make([]float64, 6)
		runCollective(t, 2, 3, func(p *sim.Proc, w *World, rank int) {
			v := -1.0
			if rank == root {
				v = 42.5
			}
			results[rank] = w.Bcast(p, rank, root, v)
		})
		for r, got := range results {
			if got != 42.5 {
				t.Errorf("root %d: rank %d = %g", root, r, got)
			}
		}
	}
}

func TestAllgather(t *testing.T) {
	for _, cfg := range [][2]int{{1, 1}, {1, 2}, {1, 6}, {2, 3}} {
		n := cfg[0] * cfg[1]
		results := make([][]float64, n)
		runCollective(t, cfg[0], cfg[1], func(p *sim.Proc, w *World, rank int) {
			results[rank] = w.Allgather(p, rank, float64(rank*rank))
		})
		for r := 0; r < n; r++ {
			for i := 0; i < n; i++ {
				if results[r][i] != float64(i*i) {
					t.Errorf("%dx%d: rank %d slot %d = %g, want %g", cfg[0], cfg[1], r, i, results[r][i], float64(i*i))
				}
			}
		}
	}
}

func TestCollectiveSequences(t *testing.T) {
	// Repeated collectives in the same order stay consistent.
	const n = 4
	results := make([]float64, n)
	runCollective(t, 1, 2, func(p *sim.Proc, w *World, rank int) {
		_ = w.Allreduce(p, rank, float64(rank), SumOp)
		v := w.Allreduce(p, rank, float64(rank)+10, MaxOp)
		v = w.Bcast(p, rank, 0, v)
		results[rank] = v
	})
	for r := 0; r < 2; r++ {
		if results[r] != 11 {
			t.Errorf("rank %d = %g, want 11", r, results[r])
		}
	}
}

// Property: allreduce(SumOp) equals the serial sum for random values and
// random rank counts.
func TestAllreduceSumProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nodes := rng.Intn(3) + 1
		rpn := []int{1, 2, 3, 6}[rng.Intn(4)]
		n := nodes * rpn
		vals := make([]float64, n)
		var want float64
		for i := range vals {
			vals[i] = rng.NormFloat64()
			want += vals[i]
		}
		results := make([]float64, n)
		e, _, w := setup(nodes, rpn, false, false)
		for r := 0; r < n; r++ {
			r := r
			e.Spawn("rank", func(p *sim.Proc) {
				results[r] = w.Allreduce(p, r, vals[r], SumOp)
			})
		}
		e.Run()
		for _, got := range results {
			// All ranks agree exactly (same combine order), and the result
			// matches the serial sum within FP reassociation error.
			if got != results[0] {
				return false
			}
			if math.Abs(got-want) > 1e-9*(math.Abs(want)+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
