package mpi

import (
	"fmt"

	"github.com/nodeaware/stencil/internal/sim"
)

// This file implements the collectives a stencil application needs around
// its halo exchanges (global residual norms, configuration broadcast, rank
// coordination). They are built from the package's own point-to-point
// messages so their cost emerges from the same transport model: intra-node
// rounds ride shared memory, inter-node rounds cross the NIC.
//
// MPI ordering semantics apply: every rank must call the same collectives in
// the same order. Payload values travel alongside the simulated messages in
// a coordination table; the messages themselves carry the wire cost.

// Op combines two reduction operands.
type Op func(a, b float64) float64

// Reduction operators.
func MaxOp(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func MinOp(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func SumOp(a, b float64) float64 { return a + b }

const (
	collTagBase = 1 << 24 // tag space reserved for collectives
	collMsgSize = 8       // one float64 on the wire
)

type collKey struct {
	seq  int
	src  int
	dst  int
	step int
}

// coll holds the per-world collective coordination state.
type coll struct {
	seq    []int // per-rank sequence number
	values map[collKey]float64
}

func (w *World) collState() *coll {
	if w.collectives == nil {
		w.collectives = &coll{
			seq:    make([]int, len(w.ranks)),
			values: make(map[collKey]float64),
		}
	}
	return w.collectives
}

// exchangeValue performs one sendrecv of a float64 with partner, returning
// the partner's value. The simulated 8-byte messages provide the timing; the
// value rides the coordination table.
func (w *World) exchangeValue(p *sim.Proc, rank, partner, seq, step int, v float64) float64 {
	c := w.collState()
	c.values[collKey{seq: seq, src: rank, dst: partner, step: step}] = v
	tag := collTagBase + (seq%1024)*64 + step
	r := w.ranks[rank]
	sbuf := w.RT.MallocHost(r.Node, r.Socket, collMsgSize)
	rbuf := w.RT.MallocHost(r.Node, r.Socket, collMsgSize)
	sendReq := r.Isend(partner, tag, sbuf, 0, collMsgSize)
	recvReq := r.Irecv(partner, tag, rbuf, 0, collMsgSize)
	Waitall(p, sendReq, recvReq)
	key := collKey{seq: seq, src: partner, dst: rank, step: step}
	pv, ok := c.values[key]
	if !ok {
		panic(fmt.Sprintf("mpi: collective value missing for %+v", key))
	}
	delete(c.values, key)
	return pv
}

// sendValue / recvValue are the one-directional variants used by the
// fold-in/fold-out phases and broadcasts.
func (w *World) sendValue(p *sim.Proc, rank, dst, seq, step int, v float64) {
	c := w.collState()
	c.values[collKey{seq: seq, src: rank, dst: dst, step: step}] = v
	tag := collTagBase + (seq%1024)*64 + step
	r := w.ranks[rank]
	buf := w.RT.MallocHost(r.Node, r.Socket, collMsgSize)
	r.Isend(dst, tag, buf, 0, collMsgSize).Wait(p)
}

func (w *World) recvValue(p *sim.Proc, rank, src, seq, step int) float64 {
	tag := collTagBase + (seq%1024)*64 + step
	r := w.ranks[rank]
	buf := w.RT.MallocHost(r.Node, r.Socket, collMsgSize)
	r.Irecv(src, tag, buf, 0, collMsgSize).Wait(p)
	c := w.collState()
	key := collKey{seq: seq, src: src, dst: rank, step: step}
	v, ok := c.values[key]
	if !ok {
		panic(fmt.Sprintf("mpi: collective value missing for %+v", key))
	}
	delete(c.values, key)
	return v
}

// Allreduce combines value across all ranks with op and returns the result
// on every rank (recursive doubling with fold-in for non-power-of-two rank
// counts). Must be called collectively, in the same order, by every rank.
func (w *World) Allreduce(p *sim.Proc, rank int, value float64, op Op) float64 {
	n := len(w.ranks)
	if n == 1 {
		return value
	}
	c := w.collState()
	seq := c.seq[rank]
	c.seq[rank]++

	p2 := 1
	for p2*2 <= n {
		p2 *= 2
	}
	rem := n - p2

	// Fold-in: ranks [p2, n) contribute to [0, rem).
	if rank >= p2 {
		w.sendValue(p, rank, rank-p2, seq, 0, value)
	} else if rank < rem {
		value = op(value, w.recvValue(p, rank, rank+p2, seq, 0))
	}

	// Recursive doubling among [0, p2).
	if rank < p2 {
		step := 1
		for mask := 1; mask < p2; mask <<= 1 {
			partner := rank ^ mask
			pv := w.exchangeValue(p, rank, partner, seq, step, value)
			value = op(value, pv)
			step++
		}
	}

	// Fold-out: results return to [p2, n).
	const foldOutStep = 62
	if rank < rem {
		w.sendValue(p, rank, rank+p2, seq, foldOutStep, value)
	} else if rank >= p2 {
		value = w.recvValue(p, rank, rank-p2, seq, foldOutStep)
	}
	return value
}

// Bcast distributes root's value to every rank via a binomial tree and
// returns it. Must be called collectively by every rank.
func (w *World) Bcast(p *sim.Proc, rank, root int, value float64) float64 {
	n := len(w.ranks)
	if n == 1 {
		return value
	}
	c := w.collState()
	seq := c.seq[rank]
	c.seq[rank]++

	// Rotate so the root is virtual rank 0.
	vrank := (rank - root + n) % n
	// Receive from the parent (highest set bit), then forward down the tree.
	if vrank != 0 {
		parent := vrank &^ (1 << (bits(vrank) - 1))
		value = w.recvValue(p, rank, (parent+root)%n, seq, 0)
	}
	for k := bits(vrank); ; k++ {
		child := vrank | (1 << k)
		if child == vrank || child >= n {
			break
		}
		w.sendValue(p, rank, (child+root)%n, seq, 0, value)
	}
	return value
}

// bits returns the number of bits needed to represent v (0 for v == 0).
func bits(v int) int {
	n := 0
	for v > 0 {
		v >>= 1
		n++
	}
	return n
}

// Allgather collects every rank's value into a slice indexed by rank,
// returned on every rank (ring algorithm: n-1 rounds of neighbor exchange).
func (w *World) Allgather(p *sim.Proc, rank int, value float64) []float64 {
	n := len(w.ranks)
	out := make([]float64, n)
	out[rank] = value
	if n == 1 {
		return out
	}
	c := w.collState()
	seq := c.seq[rank]
	c.seq[rank]++

	right := (rank + 1) % n
	left := (rank - 1 + n) % n
	// In round k, pass along the value originally owned by (rank-k).
	carry := value
	for k := 0; k < n-1; k++ {
		c.values[collKey{seq: seq, src: rank, dst: right, step: k}] = carry
		tag := collTagBase + (seq%1024)*64 + k
		r := w.ranks[rank]
		sbuf := w.RT.MallocHost(r.Node, r.Socket, collMsgSize)
		rbuf := w.RT.MallocHost(r.Node, r.Socket, collMsgSize)
		sendReq := r.Isend(right, tag, sbuf, 0, collMsgSize)
		recvReq := r.Irecv(left, tag, rbuf, 0, collMsgSize)
		Waitall(p, sendReq, recvReq)
		key := collKey{seq: seq, src: left, dst: rank, step: k}
		carry = c.values[key]
		delete(c.values, key)
		out[(rank-k-1+n*8)%n] = carry
	}
	return out
}
