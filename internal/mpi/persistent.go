// Persistent envelope channels.
//
// A Channel is a pre-registered point-to-point message path between two
// ranks: the analogue of a persistent/partitioned MPI request
// (MPI_Send_init / MPI_Psend_init). Where Isend/Irecv re-match and re-derive
// protocol state per message, a channel is opened once — per (src, dst, tag)
// — and every Start reuses it: the path, the retransmission parameters, and
// above all the *sequence state*, which survives across iterations and across
// recovery-layer plan rebuilds.
//
// Channel sequence numbers live in their own namespace,
//
//	seq = (tag+1)<<32 | counter
//
// disjoint from the small per-pair counters reliableSend assigns, and
// disjoint between channels of the same rank pair (different tags). Because
// the fault-decision hash excludes the tag, the sequence number *is* the
// channel identity on the wire: a channel's fault draws depend only on its
// own message index, never on how many unrelated messages the pair exchanged
// first. That is what makes overlapped (issue-order-shuffled) runs
// deterministic per channel.
//
// Start separates the two completion events the classic transports conflate:
// onAccept fires when the receiver has committed an accepted copy (the
// payload is usable — border compute may proceed), onDone when the sender has
// seen the ACK (the send buffer may be reused). Overlapped exchanges release
// the receiver at acceptance and let the ACK tail drain in the background.
package mpi

import (
	"fmt"

	"github.com/nodeaware/stencil/internal/cudart"
	"github.com/nodeaware/stencil/internal/sim"
)

type chanKey struct {
	src, dst, tag int
}

// Channel is a persistent message path from src to dst under one tag.
type Channel struct {
	w        *World
	src, dst *Rank
	tag      int
	counter  uint64 // messages started on this channel, ever
}

// OpenChannel returns the persistent channel (src, dst, tag), creating it on
// first use. Channels are cached on the World for the lifetime of the job —
// in particular across recovery plan rebuilds, so a rebuilt plan that opens
// the same (src, dst, tag) continues the old sequence stream rather than
// restarting it.
func (w *World) OpenChannel(src, dst *Rank, tag int) *Channel {
	if w.channels == nil {
		w.channels = make(map[chanKey]*Channel)
	}
	key := chanKey{src: src.ID, dst: dst.ID, tag: tag}
	if c, ok := w.channels[key]; ok {
		return c
	}
	c := &Channel{w: w, src: src, dst: dst, tag: tag}
	w.channels[key] = c
	return c
}

// Seq returns the next sequence number without consuming it (testing hook).
func (c *Channel) Seq() uint64 { return (uint64(c.tag+1) << 32) | (c.counter + 1) }

// Start drives one message of the channel: bytes from sendBuf[sendOff:] into
// recvBuf[recvOff:]. It mirrors the host transport's cost structure —
// latency, rendezvous, the receiver's progress engine, the NIC or
// shared-memory path — but reports completion in two stages: onAccept fires
// in event context when the receiver has committed an accepted copy, onDone
// when the sender side is fully done (inter-node under Reliable: the ACK
// arrived; otherwise both fire together). Both callbacks are required.
func (c *Channel) Start(sendBuf *cudart.Buffer, sendOff int64, recvBuf *cudart.Buffer, recvOff, bytes int64,
	onAccept, onDone func()) {
	w := c.w
	c.src.checkDeactivated(c.dst.ID)
	c.counter++
	seq := (uint64(c.tag+1) << 32) | c.counter
	p := w.M.Params
	srcRank, dstRank := c.src, c.dst
	intra := srcRank.Node == dstRank.Node
	send := &Request{rank: srcRank, buf: sendBuf, off: sendOff, bytes: bytes, tag: c.tag, isSend: true}
	recv := &Request{rank: dstRank, buf: recvBuf, off: recvOff, bytes: bytes, tag: c.tag}
	w.M.Eng.Spawn(fmt.Sprintf("mpi.chan.%d-%d", srcRank.ID, dstRank.ID), func(pr *sim.Proc) {
		lat := p.MPIInterLatency
		if intra {
			lat = p.MPIIntraLatency
		}
		if float64(bytes) > p.EagerLimit {
			lat += p.RendezvousCost
		}
		pr.Sleep(lat)
		path := w.M.HostToHostPath(srcRank.Node, srcRank.Socket, dstRank.Node, dstRank.Socket)
		start := pr.Now()
		name := "mpi.nic"
		if intra {
			name = "mpi.shm"
			dstRank.progress.Acquire(pr)
			w.M.Net.Transfer(pr, "mpi.shm", append(path, dstRank.copyEngine), float64(bytes))
			dstRank.progress.Release()
			commitCopy(recvBuf, recvOff, sendBuf, sendOff, bytes)
			onAccept()
		} else if w.Reliable {
			dstRank.progress.Use(pr, func() { pr.Sleep(p.MPIIntraLatency) })
			rev := w.M.HostToHostPath(dstRank.Node, dstRank.Socket, srcRank.Node, srcRank.Socket)
			done := sim.NewSignal(w.M.Eng, name+".chan")
			var check func() uint64
			if recvBuf.Data() != nil {
				check = func() uint64 { return fnvSum(recvBuf.Data()[recvOff : recvOff+bytes]) }
			}
			w.reliableSendSeq(name, path, rev, send, recv, seq, func(corrupt bool, key uint64) {
				commitCopy(recvBuf, recvOff, sendBuf, sendOff, bytes)
				if corrupt {
					corruptPayload(recvBuf, recvOff, bytes, key)
				}
			}, check, onAccept, done.Fire)
			done.Wait(pr)
		} else {
			dstRank.progress.Use(pr, func() { pr.Sleep(p.MPIIntraLatency) })
			w.transferRetry(pr, name, path, float64(bytes))
			commitCopy(recvBuf, recvOff, sendBuf, sendOff, bytes)
			onAccept()
		}
		if w.RT != nil && w.RT.OnOp != nil {
			w.RT.Record(cudart.OpRecord{
				Kind: cudart.OpMemcpyH2H, Name: name, Device: -1,
				Stream: "host", Start: start, End: pr.Now(), Bytes: bytes,
			})
		}
		onDone()
	})
}
