package mpi

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/nodeaware/stencil/internal/cudart"
	"github.com/nodeaware/stencil/internal/machine"
	"github.com/nodeaware/stencil/internal/sim"
)

func setup(nodes, ranksPerNode int, cudaAware, real bool) (*sim.Engine, *cudart.Runtime, *World) {
	e := sim.NewEngine()
	m := machine.NewSummit(e, nodes)
	rt := cudart.NewRuntime(m, real)
	w := NewWorld(m, rt, ranksPerNode, cudaAware)
	return e, rt, w
}

func TestWorldLayout(t *testing.T) {
	_, _, w := setup(2, 6, false, false)
	if w.Size() != 12 {
		t.Fatalf("size = %d, want 12", w.Size())
	}
	r7 := w.Rank(7)
	if r7.Node != 1 {
		t.Errorf("rank 7 node = %d, want 1", r7.Node)
	}
	// 6 ranks over 2 sockets: ranks 0-2 socket 0, ranks 3-5 socket 1.
	if w.Rank(0).Socket != 0 || w.Rank(2).Socket != 0 || w.Rank(3).Socket != 1 || w.Rank(5).Socket != 1 {
		t.Error("socket distribution wrong for 6 ranks/node")
	}
	// 1 rank per node sits on socket 0.
	_, _, w1 := setup(1, 1, false, false)
	if w1.Rank(0).Socket != 0 {
		t.Error("single rank should sit on socket 0")
	}
}

func TestSendRecvHostIntraNode(t *testing.T) {
	e, rt, w := setup(1, 2, false, true)
	src := rt.MallocHost(0, 0, 64)
	dst := rt.MallocHost(0, 1, 64)
	for i := range src.Data() {
		src.Data()[i] = byte(i + 1)
	}
	e.Spawn("r0", func(p *sim.Proc) {
		req := w.Rank(0).Isend(1, 7, src, 0, 64)
		req.Wait(p)
	})
	e.Spawn("r1", func(p *sim.Proc) {
		req := w.Rank(1).Irecv(0, 7, dst, 0, 64)
		req.Wait(p)
	})
	e.Run()
	for i := 0; i < 64; i++ {
		if dst.Data()[i] != byte(i+1) {
			t.Fatalf("byte %d not delivered", i)
		}
	}
}

func TestSendBeforeRecvAndRecvBeforeSend(t *testing.T) {
	for _, sendFirst := range []bool{true, false} {
		e, rt, w := setup(1, 2, false, true)
		src := rt.MallocHost(0, 0, 16)
		dst := rt.MallocHost(0, 1, 16)
		src.Data()[3] = 42
		var sendAt, recvAt sim.Time
		if sendFirst {
			sendAt, recvAt = 0, 0.001
		} else {
			sendAt, recvAt = 0.001, 0
		}
		e.Spawn("r0", func(p *sim.Proc) {
			p.Sleep(sendAt)
			w.Rank(0).Isend(1, 1, src, 0, 16).Wait(p)
		})
		e.Spawn("r1", func(p *sim.Proc) {
			p.Sleep(recvAt)
			w.Rank(1).Irecv(0, 1, dst, 0, 16).Wait(p)
		})
		e.Run()
		if dst.Data()[3] != 42 {
			t.Errorf("sendFirst=%v: message not delivered", sendFirst)
		}
	}
}

func TestTagMatching(t *testing.T) {
	e, rt, w := setup(1, 2, false, true)
	a := rt.MallocHost(0, 0, 8)
	b := rt.MallocHost(0, 0, 8)
	ra := rt.MallocHost(0, 1, 8)
	rb := rt.MallocHost(0, 1, 8)
	a.Data()[0] = 10
	b.Data()[0] = 20
	e.Spawn("r0", func(p *sim.Proc) {
		// Send tag 2 first, then tag 1: matching must respect tags, not
		// arrival order.
		r1 := w.Rank(0).Isend(1, 2, b, 0, 8)
		r2 := w.Rank(0).Isend(1, 1, a, 0, 8)
		Waitall(p, r1, r2)
	})
	e.Spawn("r1", func(p *sim.Proc) {
		r1 := w.Rank(1).Irecv(0, 1, ra, 0, 8)
		r2 := w.Rank(1).Irecv(0, 2, rb, 0, 8)
		Waitall(p, r1, r2)
	})
	e.Run()
	if ra.Data()[0] != 10 || rb.Data()[0] != 20 {
		t.Errorf("tag matching delivered wrong payloads: %d %d", ra.Data()[0], rb.Data()[0])
	}
}

func TestSameTagFIFO(t *testing.T) {
	e, rt, w := setup(1, 2, false, true)
	bufs := make([]*cudart.Buffer, 3)
	recvs := make([]*cudart.Buffer, 3)
	for i := range bufs {
		bufs[i] = rt.MallocHost(0, 0, 8)
		bufs[i].Data()[0] = byte(i + 1)
		recvs[i] = rt.MallocHost(0, 1, 8)
	}
	e.Spawn("r0", func(p *sim.Proc) {
		var reqs []*Request
		for i := range bufs {
			reqs = append(reqs, w.Rank(0).Isend(1, 5, bufs[i], 0, 8))
		}
		Waitall(p, reqs...)
	})
	e.Spawn("r1", func(p *sim.Proc) {
		var reqs []*Request
		for i := range recvs {
			reqs = append(reqs, w.Rank(1).Irecv(0, 5, recvs[i], 0, 8))
		}
		Waitall(p, reqs...)
	})
	e.Run()
	for i := range recvs {
		if recvs[i].Data()[0] != byte(i+1) {
			t.Errorf("same-tag message %d out of order: got %d", i, recvs[i].Data()[0])
		}
	}
}

func TestInterNodeTransfer(t *testing.T) {
	e, rt, w := setup(2, 1, false, true)
	src := rt.MallocHost(0, 0, 125<<20) // 125 MiB
	dst := rt.MallocHost(1, 0, 125<<20)
	src.Data()[99] = 7
	var done sim.Time
	e.Spawn("r0", func(p *sim.Proc) { w.Rank(0).Isend(1, 0, src, 0, 125<<20).Wait(p) })
	e.Spawn("r1", func(p *sim.Proc) {
		w.Rank(1).Irecv(0, 0, dst, 0, 125<<20).Wait(p)
		done = p.Now()
	})
	e.Run()
	if dst.Data()[99] != 7 {
		t.Fatal("inter-node payload lost")
	}
	// 125 MiB over the 25 GB/s dual-rail NIC ≈ 5.2 ms; host memory links are
	// faster so the NIC is the bottleneck.
	wire := float64(125<<20) / (25 * machine.GB)
	if done < wire || done > wire*1.2 {
		t.Errorf("inter-node transfer took %g, want ≈%g", done, wire)
	}
}

func TestIntraNodeProgressSerialization(t *testing.T) {
	// Two messages to the same rank serialize on its progress engine; two
	// messages to different ranks overlap. This is the mechanism behind the
	// paper's ranks-per-node observations for STAGED.
	run := func(twoReceivers bool) sim.Time {
		e, rt, w := setup(1, 3, false, false)
		const bytes = 60 << 20
		mk := func(node, socket int) *cudart.Buffer { return rt.MallocHost(node, socket, bytes) }
		var finish sim.Time
		dst1 := 1
		dst2 := 1
		if twoReceivers {
			dst2 = 2
		}
		e.Spawn("send0", func(p *sim.Proc) { w.Rank(0).Isend(dst1, 0, mk(0, 0), 0, bytes).Wait(p) })
		e.Spawn("send1", func(p *sim.Proc) { w.Rank(0).Isend(dst2, 1, mk(0, 0), 0, bytes).Wait(p) })
		e.Spawn("recv1", func(p *sim.Proc) {
			w.Rank(dst1).Irecv(0, 0, mk(0, 0), 0, bytes).Wait(p)
			if p.Now() > finish {
				finish = p.Now()
			}
		})
		e.Spawn("recv2", func(p *sim.Proc) {
			w.Rank(dst2).Irecv(0, 1, mk(0, 0), 0, bytes).Wait(p)
			if p.Now() > finish {
				finish = p.Now()
			}
		})
		e.Run()
		return finish
	}
	serial := run(false)
	parallel := run(true)
	if parallel >= serial*0.95 {
		t.Errorf("messages to distinct ranks (%.6f) should beat same-rank serialization (%.6f)", parallel, serial)
	}
}

func TestDeviceBufferRequiresCudaAware(t *testing.T) {
	_, rt, w := setup(1, 2, false, false)
	dbuf := rt.DeviceAt(0, 0).Malloc(64)
	defer func() {
		if recover() == nil {
			t.Error("device buffer without CUDA-aware did not panic")
		}
	}()
	w.Rank(0).Isend(1, 0, dbuf, 0, 64)
}

func TestCudaAwareTransferDelivers(t *testing.T) {
	e, rt, w := setup(2, 1, true, true)
	src := rt.DeviceAt(0, 0).Malloc(1 << 20)
	dst := rt.DeviceAt(1, 0).Malloc(1 << 20)
	src.Data()[12345] = 99
	e.Spawn("r0", func(p *sim.Proc) { w.Rank(0).Isend(1, 0, src, 0, 1<<20).Wait(p) })
	e.Spawn("r1", func(p *sim.Proc) { w.Rank(1).Irecv(0, 0, dst, 0, 1<<20).Wait(p) })
	e.Run()
	if dst.Data()[12345] != 99 {
		t.Error("CUDA-aware payload lost")
	}
}

func TestCudaAwareSlowerThanHostForManySmallMessages(t *testing.T) {
	// The per-message pathologies (handle exchange, default-stream
	// serialization, device sync) make many small CUDA-aware messages slower
	// than the same messages through host buffers.
	const n = 20
	const bytes = 64 << 10
	runCA := func() sim.Time {
		e, rt, w := setup(2, 1, true, false)
		var last sim.Time
		for i := 0; i < n; i++ {
			i := i
			e.Spawn("s", func(p *sim.Proc) { w.Rank(0).Isend(1, i, rt.DeviceAt(0, 0).Malloc(bytes), 0, bytes).Wait(p) })
			e.Spawn("r", func(p *sim.Proc) {
				w.Rank(1).Irecv(0, i, rt.DeviceAt(1, 0).Malloc(bytes), 0, bytes).Wait(p)
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
		e.Run()
		return last
	}
	runHost := func() sim.Time {
		e, rt, w := setup(2, 1, false, false)
		var last sim.Time
		for i := 0; i < n; i++ {
			i := i
			e.Spawn("s", func(p *sim.Proc) { w.Rank(0).Isend(1, i, rt.MallocHost(0, 0, bytes), 0, bytes).Wait(p) })
			e.Spawn("r", func(p *sim.Proc) {
				w.Rank(1).Irecv(0, i, rt.MallocHost(1, 0, bytes), 0, bytes).Wait(p)
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
		e.Run()
		return last
	}
	ca, host := runCA(), runHost()
	if ca <= host {
		t.Errorf("CUDA-aware (%.6f) should be slower than host (%.6f) for many small messages", ca, host)
	}
}

func TestBarrier(t *testing.T) {
	e, _, w := setup(1, 6, false, false)
	var release []sim.Time
	for i := 0; i < 6; i++ {
		i := i
		e.Spawn("r", func(p *sim.Proc) {
			p.Sleep(sim.Time(i) * 0.01) // staggered arrival, last at 0.05
			w.Barrier(p)
			release = append(release, p.Now())
		})
	}
	e.Run()
	if len(release) != 6 {
		t.Fatalf("released %d ranks, want 6", len(release))
	}
	for _, r := range release {
		if r < 0.05 {
			t.Errorf("rank released at %g before last arrival at 0.05", r)
		}
		if r != release[0] {
			t.Errorf("ranks released at different times: %v", release)
		}
	}
}

func TestBarrierReusable(t *testing.T) {
	e, _, w := setup(1, 2, false, false)
	counts := 0
	for i := 0; i < 2; i++ {
		e.Spawn("r", func(p *sim.Proc) {
			w.Barrier(p)
			w.Barrier(p)
			counts++
		})
	}
	e.Run()
	if counts != 2 {
		t.Errorf("double barrier completed for %d ranks, want 2", counts)
	}
}

func TestAllreduceMax(t *testing.T) {
	e, _, w := setup(1, 4, false, false)
	ar := NewAllreducer(w)
	results := make([]float64, 4)
	for i := 0; i < 4; i++ {
		i := i
		e.Spawn("r", func(p *sim.Proc) {
			results[i] = ar.MaxFloat(p, float64(i*i))
		})
	}
	e.Run()
	for i, r := range results {
		if r != 9 {
			t.Errorf("rank %d allreduce max = %g, want 9", i, r)
		}
	}
}

func TestSizeMismatchPanics(t *testing.T) {
	e, rt, w := setup(1, 2, false, false)
	defer func() {
		if recover() == nil {
			t.Error("size mismatch did not panic")
		}
		_ = e
	}()
	w.Rank(1).Irecv(0, 0, rt.MallocHost(0, 0, 32), 0, 32)
	w.Rank(0).Isend(1, 0, rt.MallocHost(0, 0, 64), 0, 64)
}

// Property: random permutations of send/recv posting order always deliver
// every payload to the matching receive.
func TestMatchingPermutationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e, rt, w := setup(1, 2, false, true)
		n := rng.Intn(6) + 2
		sends := make([]*cudart.Buffer, n)
		recvBufs := make([]*cudart.Buffer, n)
		for i := 0; i < n; i++ {
			sends[i] = rt.MallocHost(0, 0, 8)
			sends[i].Data()[0] = byte(i + 1)
			recvBufs[i] = rt.MallocHost(0, 1, 8)
		}
		sendOrder := rng.Perm(n)
		recvOrder := rng.Perm(n)
		e.Spawn("s", func(p *sim.Proc) {
			var reqs []*Request
			for _, i := range sendOrder {
				reqs = append(reqs, w.Rank(0).Isend(1, i, sends[i], 0, 8))
			}
			Waitall(p, reqs...)
		})
		e.Spawn("r", func(p *sim.Proc) {
			var reqs []*Request
			for _, i := range recvOrder {
				reqs = append(reqs, w.Rank(1).Irecv(0, i, recvBufs[i], 0, 8))
			}
			Waitall(p, reqs...)
		})
		e.Run()
		for i := 0; i < n; i++ {
			if recvBufs[i].Data()[0] != byte(i+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: inter-node transfer time is monotone nondecreasing in message
// size.
func TestTransferMonotoneProperty(t *testing.T) {
	measure := func(bytes int64) sim.Time {
		e, rt, w := setup(2, 1, false, false)
		var done sim.Time
		e.Spawn("s", func(p *sim.Proc) { w.Rank(0).Isend(1, 0, rt.MallocHost(0, 0, bytes), 0, bytes).Wait(p) })
		e.Spawn("r", func(p *sim.Proc) {
			w.Rank(1).Irecv(0, 0, rt.MallocHost(1, 0, bytes), 0, bytes).Wait(p)
			done = p.Now()
		})
		e.Run()
		return done
	}
	f := func(a, b uint32) bool {
		x, y := int64(a%(1<<26))+1, int64(b%(1<<26))+1
		if x > y {
			x, y = y, x
		}
		tx, ty := measure(x), measure(y)
		return tx <= ty+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestWtimeAdvances(t *testing.T) {
	e, _, w := setup(1, 1, false, false)
	var t0, t1 float64
	e.Spawn("r", func(p *sim.Proc) {
		t0 = w.Wtime()
		p.Sleep(0.25)
		t1 = w.Wtime()
	})
	e.Run()
	if math.Abs((t1-t0)-0.25) > 1e-12 {
		t.Errorf("Wtime delta = %g, want 0.25", t1-t0)
	}
}

// TestDeactivate: evicting ranks shrinks the collectives to the survivors
// and bars the dead ranks from messaging.
func TestDeactivate(t *testing.T) {
	e, _, w := setup(1, 6, false, false)
	if w.ActiveSize() != 6 {
		t.Fatalf("ActiveSize = %d, want 6", w.ActiveSize())
	}
	w.Deactivate(2)
	w.Deactivate(2) // idempotent
	w.Deactivate(4)
	if w.ActiveSize() != 4 {
		t.Errorf("ActiveSize = %d, want 4", w.ActiveSize())
	}
	if !w.Deactivated(2) || !w.Deactivated(4) || w.Deactivated(0) {
		t.Error("Deactivated flags wrong")
	}
	// A barrier over the four survivors completes.
	done := 0
	for r := 0; r < 6; r++ {
		if w.Deactivated(r) {
			continue
		}
		e.Spawn("rank", func(p *sim.Proc) {
			w.Barrier(p)
			done++
		})
	}
	e.Run()
	if done != 4 {
		t.Errorf("%d survivors passed the barrier, want 4", done)
	}
}

// TestDeactivatedMessagingPanics: Isend/Irecv touching a deactivated rank is
// a protocol bug and must fail loudly.
func TestDeactivatedMessagingPanics(t *testing.T) {
	_, rt, w := setup(1, 6, false, false)
	w.Deactivate(3)
	buf := rt.MallocHost(0, 0, 64)
	for name, fn := range map[string]func(){
		"send from dead": func() { w.Rank(3).Isend(0, 1, buf, 0, 64) },
		"send to dead":   func() { w.Rank(0).Isend(3, 1, buf, 0, 64) },
		"recv on dead":   func() { w.Rank(3).Irecv(0, 1, buf, 0, 64) },
		"recv from dead": func() { w.Rank(0).Irecv(3, 1, buf, 0, 64) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestFailedRankStillMessages: Fail alone (detection not yet run) leaves
// messaging working — the zombie window between death and eviction.
func TestFailedRankStillMessages(t *testing.T) {
	e, rt, w := setup(1, 2, false, false)
	w.Rank(1).Fail()
	if !w.Rank(1).Failed() {
		t.Fatal("Failed() false after Fail")
	}
	if w.Deactivated(1) {
		t.Fatal("Fail must not deactivate; that is the recovery layer's job")
	}
	src := rt.MallocHost(0, 0, 64)
	dst := rt.MallocHost(0, 1, 64)
	delivered := false
	e.Spawn("send", func(p *sim.Proc) { w.Rank(1).Isend(0, 9, src, 0, 64).Wait(p) })
	e.Spawn("recv", func(p *sim.Proc) {
		w.Rank(0).Irecv(1, 9, dst, 0, 64).Wait(p)
		delivered = true
	})
	e.Run()
	if !delivered {
		t.Error("zombie rank's message not delivered")
	}
}

// TestBarrierLatencyShrinks: the log2 barrier cost follows the active count.
func TestBarrierLatencyShrinks(t *testing.T) {
	elapsed := func(deactivate int) sim.Time {
		e, _, w := setup(1, 6, false, false)
		for r := 0; r < deactivate; r++ {
			w.Deactivate(5 - r)
		}
		for r := 0; r < w.Size(); r++ {
			if w.Deactivated(r) {
				continue
			}
			e.Spawn("rank", func(p *sim.Proc) { w.Barrier(p) })
		}
		e.Run()
		return e.Now()
	}
	full, shrunk := elapsed(0), elapsed(4)
	if shrunk >= full {
		t.Errorf("barrier over 2 ranks (%.3g) not faster than over 6 (%.3g)", shrunk, full)
	}
}
