package mpi

import (
	"testing"

	"github.com/nodeaware/stencil/internal/sim"
)

// TestSendRetryOverFlappedNIC: an inter-node message in flight when the NIC
// fails is aborted by the timeout and retried until the NIC recovers; the
// payload arrives intact and the retry counter records the attempts.
func TestSendRetryOverFlappedNIC(t *testing.T) {
	e, rt, w := setup(2, 1, false, true)
	w.SendTimeout = 10e-3
	w.SendBackoff = 5e-3

	const bytes = 8 << 20 // ~0.7 ms healthy wire time at 12.5 GB/s per hop
	src := rt.MallocHost(0, 0, bytes)
	dst := rt.MallocHost(1, 0, bytes)
	for i := 0; i < 256; i++ {
		src.Data()[i] = byte(i)
	}
	nicOut, _ := w.M.Nodes[0].NIC()
	// Fail the sender's NIC before the message starts, restore at t=40ms:
	// the first attempts crawl at the residual trickle and time out.
	e.At(0, func() { w.M.Net.FailLink(nicOut) })
	e.At(40e-3, func() { w.M.Net.RestoreLink(nicOut) })

	var arrived sim.Time
	e.Spawn("send", func(p *sim.Proc) {
		w.Rank(0).Isend(1, 1, src, 0, bytes).Wait(p)
	})
	e.Spawn("recv", func(p *sim.Proc) {
		w.Rank(1).Irecv(0, 1, dst, 0, bytes).Wait(p)
		arrived = p.Now()
	})
	e.Run()

	if w.Retries == 0 {
		t.Error("no retries recorded across a failed NIC")
	}
	if arrived < 40e-3 {
		t.Errorf("message arrived at %g, before the NIC recovered", arrived)
	}
	if arrived > 80e-3 {
		t.Errorf("message arrived at %g, long after recovery", arrived)
	}
	for i := 0; i < 256; i++ {
		if dst.Data()[i] != byte(i) {
			t.Fatalf("byte %d corrupted after retries", i)
		}
	}
}

// TestSendRetryDisabledByDefault: without SendTimeout the transfer is a
// single flow that simply crawls through the outage (no aborts, no retries).
func TestSendRetryDisabledByDefault(t *testing.T) {
	e, rt, w := setup(2, 1, false, false)
	const bytes = 1 << 20
	src := rt.MallocHost(0, 0, bytes)
	dst := rt.MallocHost(1, 0, bytes)
	nicOut, _ := w.M.Nodes[0].NIC()
	e.At(0, func() { w.M.Net.FailLink(nicOut) })
	e.At(30e-3, func() { w.M.Net.RestoreLink(nicOut) })
	e.Spawn("send", func(p *sim.Proc) { w.Rank(0).Isend(1, 1, src, 0, bytes).Wait(p) })
	e.Spawn("recv", func(p *sim.Proc) { w.Rank(1).Irecv(0, 1, dst, 0, bytes).Wait(p) })
	e.Run()
	if w.Retries != 0 {
		t.Errorf("retries with timeout disabled: got %d want 0", w.Retries)
	}
}

// TestSendRetryCapBoundsAborts: the retry cap bounds the abort count and the
// final attempt is driven to completion even if the link never recovers.
func TestSendRetryCapBoundsAborts(t *testing.T) {
	e, rt, w := setup(2, 1, false, false)
	w.SendTimeout = 1e-3
	w.SendRetries = 3
	const bytes = 1 << 20
	src := rt.MallocHost(0, 0, bytes)
	dst := rt.MallocHost(1, 0, bytes)
	nicOut, _ := w.M.Nodes[0].NIC()
	e.At(0, func() { w.M.Net.FailLink(nicOut) })
	var arrived bool
	e.Spawn("send", func(p *sim.Proc) { w.Rank(0).Isend(1, 1, src, 0, bytes).Wait(p) })
	e.Spawn("recv", func(p *sim.Proc) {
		w.Rank(1).Irecv(0, 1, dst, 0, bytes).Wait(p)
		arrived = true
	})
	e.Run()
	if w.Retries != 3 {
		t.Errorf("retries: got %d want exactly the cap (3)", w.Retries)
	}
	if !arrived {
		t.Error("message never completed on the residual trickle")
	}
}

// TestPauseProgress: a paused progress engine delays intra-node
// shared-memory receives by the pause duration.
func TestPauseProgress(t *testing.T) {
	timing := func(pause sim.Time) sim.Time {
		e, rt, w := setup(1, 2, false, false)
		const bytes = 4 << 20
		src := rt.MallocHost(0, 0, bytes)
		dst := rt.MallocHost(0, 1, bytes)
		if pause > 0 {
			e.At(0, func() { w.Rank(1).PauseProgress(pause) })
		}
		var arrived sim.Time
		e.Spawn("send", func(p *sim.Proc) { w.Rank(0).Isend(1, 1, src, 0, bytes).Wait(p) })
		e.Spawn("recv", func(p *sim.Proc) {
			w.Rank(1).Irecv(0, 1, dst, 0, bytes).Wait(p)
			arrived = p.Now()
		})
		e.Run()
		return arrived
	}
	base := timing(0)
	paused := timing(20e-3)
	if delta := paused - base; delta < 19e-3 || delta > 21e-3 {
		t.Errorf("pause delayed receive by %g, want ~20ms (base %g, paused %g)", delta, base, paused)
	}
}
