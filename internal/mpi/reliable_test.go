package mpi

import (
	"testing"

	"github.com/nodeaware/stencil/internal/flownet"
	"github.com/nodeaware/stencil/internal/sim"
)

// reliableRig builds a 2-node, 1-rank-per-node world with the reliable
// envelope armed and returns the four directed NIC links: node 0 out/in and
// node 1 out/in. A message rank0→rank1 crosses n0out then n1in; its
// ACK/NACK crosses n1out then n0in.
func reliableRig(t *testing.T, cudaAware bool, seed uint64) (*sim.Engine, *World, [4]*flownet.Link) {
	t.Helper()
	e, _, w := setup(2, 1, cudaAware, true)
	w.Reliable = true
	w.DeliverySeed = seed
	n0out, n0in := w.M.Nodes[0].NIC()
	n1out, n1in := w.M.Nodes[1].NIC()
	return e, w, [4]*flownet.Link{n0out, n0in, n1out, n1in}
}

func reliableSendRecv(t *testing.T, e *sim.Engine, w *World, bytes int64) (src, dst []byte) {
	t.Helper()
	sbuf := w.RT.MallocHost(0, 0, bytes)
	dbuf := w.RT.MallocHost(1, 0, bytes)
	for i := range sbuf.Data() {
		sbuf.Data()[i] = byte(3*i + 1)
	}
	e.Spawn("r0", func(p *sim.Proc) { w.Rank(0).Isend(1, 0, sbuf, 0, bytes).Wait(p) })
	e.Spawn("r1", func(p *sim.Proc) { w.Rank(1).Irecv(0, 0, dbuf, 0, bytes).Wait(p) })
	e.Run()
	return sbuf.Data(), dbuf.Data()
}

func payloadEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestReliableCleanDelivery(t *testing.T) {
	e, w, _ := reliableRig(t, false, 1)
	src, dst := reliableSendRecv(t, e, w, 4096)
	if !payloadEqual(src, dst) {
		t.Fatal("clean reliable delivery altered the payload")
	}
	s := w.Stats()
	if s.Messages != 1 || s.Retransmits != 0 || s.Drops != 0 || s.Corrupts != 0 {
		t.Errorf("clean stats = %+v", s)
	}
}

func TestReliableDropAlwaysTerminates(t *testing.T) {
	// Drop probability 1.0: every attempt but the guaranteed final one is
	// withheld. The protocol must still terminate and deliver intact.
	e, w, links := reliableRig(t, false, 2)
	w.SendRetries = 4
	links[0].SetLoss(flownet.Loss{Drop: 1})
	src, dst := reliableSendRecv(t, e, w, 4096)
	if !payloadEqual(src, dst) {
		t.Fatal("payload lost under total drop")
	}
	s := w.Stats()
	if s.Retransmits != 3 {
		t.Errorf("retransmits = %d, want 3 (attempts 1..3)", s.Retransmits)
	}
	if s.Drops != 3 {
		t.Errorf("drops = %d, want 3", s.Drops)
	}
}

func TestReliableCorruptionNackedThenClean(t *testing.T) {
	// One poisoned attempt: seed chosen so attempt 0 corrupts and attempt 1
	// is clean. With corrupt probability 1.0 every attempt corrupts, so use
	// the attempt cap instead: the first maxAttempts-1 attempts are NACKed.
	e, w, links := reliableRig(t, false, 3)
	w.SendRetries = 3
	links[3].SetLoss(flownet.Loss{Corrupt: 1}) // node 1 in: data's last hop
	var compromised bool
	w.OnDeliver = func(_ sim.Time, _, _, _ int, c bool) { compromised = c }
	src, dst := reliableSendRecv(t, e, w, 4096)
	s := w.Stats()
	if s.Nacks != 2 {
		t.Errorf("nacks = %d, want 2", s.Nacks)
	}
	if s.Exhausted != 1 {
		t.Errorf("exhausted = %d, want 1", s.Exhausted)
	}
	if !compromised {
		t.Error("OnDeliver did not flag the exhausted delivery as compromised")
	}
	if payloadEqual(src, dst) {
		t.Error("exhausted corrupt delivery should differ from the source payload")
	}
}

func TestReliableDupDeduplicated(t *testing.T) {
	e, w, links := reliableRig(t, false, 4)
	links[0].SetLoss(flownet.Loss{Dup: 1})
	src, dst := reliableSendRecv(t, e, w, 4096)
	if !payloadEqual(src, dst) {
		t.Fatal("payload wrong under duplication")
	}
	s := w.Stats()
	if s.Dups < 1 || s.Dedups < 1 {
		t.Errorf("dups = %d, dedups = %d, want both >= 1", s.Dups, s.Dedups)
	}
}

func TestReliableAckLossCoveredByRTO(t *testing.T) {
	// Loss only on the reverse path: data always lands, ACKs vanish until
	// the final attempt's reliable control channel. The sender's RTO keeps
	// retransmitting; the receiver deduplicates every extra copy.
	e, w, links := reliableRig(t, false, 5)
	w.SendRetries = 4
	links[1].SetLoss(flownet.Loss{Drop: 1}) // node 0 in: ACK's last hop
	src, dst := reliableSendRecv(t, e, w, 4096)
	if !payloadEqual(src, dst) {
		t.Fatal("payload wrong under ACK loss")
	}
	s := w.Stats()
	if s.AckDrops < 1 {
		t.Errorf("ack drops = %d, want >= 1", s.AckDrops)
	}
	if s.Dedups < 1 {
		t.Errorf("dedups = %d, want >= 1 (spurious retransmissions)", s.Dedups)
	}
	if s.Exhausted != 0 || s.Corrupts != 0 {
		t.Errorf("stats = %+v, want no corruption under pure ACK loss", s)
	}
}

func TestReliableCorruptSpuriousRetransmitDeduplicated(t *testing.T) {
	// Lost ACKs force spurious retransmissions of an already-accepted
	// message, and half the data copies arrive corrupted. Dedup must take
	// precedence over the corruption verdict: once a clean copy is accepted,
	// a later corrupt copy of the same sequence number must not commit a
	// single byte over it, and the delivery must not be reported compromised.
	e, w, links := reliableRig(t, false, 1)
	w.SendRetries = 6
	links[1].SetLoss(flownet.Loss{Drop: 1})      // node 0 in: every ACK/NACK lost
	links[3].SetLoss(flownet.Loss{Corrupt: 0.5}) // node 1 in: data's last hop
	var compromised bool
	w.OnDeliver = func(_ sim.Time, _, _, _ int, c bool) { compromised = compromised || c }
	src, dst := reliableSendRecv(t, e, w, 4096)
	s := w.Stats()
	if s.Dedups == 0 || s.Corrupts == 0 {
		t.Fatalf("stats = %+v: scenario did not combine dedup with corruption; weak test", s)
	}
	if !payloadEqual(src, dst) {
		t.Error("corrupt spurious retransmission overwrote the accepted payload")
	}
	if compromised || s.Exhausted != 0 {
		t.Errorf("delivery reported compromised (exhausted = %d) despite an accepted clean copy", s.Exhausted)
	}
}

func TestReliableDupNotCountedWhenDropped(t *testing.T) {
	// A dup drawn on an early link followed by a drop on a later link
	// withholds the whole message: no duplicate is ever delivered, so the
	// Dups counter must not tick. With drop=1 downstream of dup=1, every
	// non-final attempt is withheld and only the guaranteed final attempt
	// (drop and dup suppressed) delivers.
	e, w, links := reliableRig(t, false, 7)
	w.SendRetries = 3
	links[0].SetLoss(flownet.Loss{Dup: 1})  // node 0 out: dup drawn first
	links[3].SetLoss(flownet.Loss{Drop: 1}) // node 1 in: then dropped
	src, dst := reliableSendRecv(t, e, w, 4096)
	if !payloadEqual(src, dst) {
		t.Fatal("payload wrong under dup-then-drop")
	}
	s := w.Stats()
	if s.Dups != 0 {
		t.Errorf("dups = %d, want 0: every dup-drawn copy was withheld by a later drop", s.Dups)
	}
	if s.Drops != 2 {
		t.Errorf("drops = %d, want 2 (attempts 0..1)", s.Drops)
	}
}

func TestReliableCudaAwarePath(t *testing.T) {
	e, w, links := reliableRig(t, true, 6)
	w.SendRetries = 4
	links[0].SetLoss(flownet.Loss{Drop: 1})
	const bytes = 1 << 16
	sbuf := w.RT.DeviceAt(0, 0).Malloc(bytes)
	dbuf := w.RT.DeviceAt(1, 0).Malloc(bytes)
	for i := range sbuf.Data() {
		sbuf.Data()[i] = byte(5*i + 2)
	}
	e.Spawn("r0", func(p *sim.Proc) { w.Rank(0).Isend(1, 0, sbuf, 0, bytes).Wait(p) })
	e.Spawn("r1", func(p *sim.Proc) { w.Rank(1).Irecv(0, 0, dbuf, 0, bytes).Wait(p) })
	e.Run()
	if !payloadEqual(sbuf.Data(), dbuf.Data()) {
		t.Fatal("CUDA-aware reliable payload wrong under total drop")
	}
	if s := w.Stats(); s.Retransmits != 3 {
		t.Errorf("retransmits = %d, want 3", s.Retransmits)
	}
}

func TestReliableDeterministicAcrossReruns(t *testing.T) {
	const msgs = 6
	run := func() (Stats, sim.Time, []byte) {
		e, w, links := reliableRig(t, false, 42)
		w.SendRetries = 8
		for _, l := range links {
			l.SetLoss(flownet.Loss{Drop: 0.3, Corrupt: 0.3, Dup: 0.3})
		}
		const bytes = 4096
		sbuf := w.RT.MallocHost(0, 0, bytes)
		dbuf := w.RT.MallocHost(1, 0, msgs*bytes)
		for i := range sbuf.Data() {
			sbuf.Data()[i] = byte(3*i + 1)
		}
		for i := 0; i < msgs; i++ {
			i := i
			e.Spawn("r0", func(p *sim.Proc) { w.Rank(0).Isend(1, i, sbuf, 0, bytes).Wait(p) })
			e.Spawn("r1", func(p *sim.Proc) {
				w.Rank(1).Irecv(0, i, dbuf, int64(i*bytes), bytes).Wait(p)
			})
		}
		e.Run()
		return w.Stats(), e.Now(), dbuf.Data()
	}
	s1, t1, d1 := run()
	s2, t2, d2 := run()
	if s1 != s2 {
		t.Errorf("stats differ across reruns: %+v vs %+v", s1, s2)
	}
	if t1 != t2 {
		t.Errorf("completion time differs across reruns: %v vs %v", t1, t2)
	}
	if !payloadEqual(d1, d2) {
		t.Error("delivered payload differs across reruns")
	}
	if s1.Drops+s1.Corrupts+s1.Dups+s1.AckDrops == 0 {
		t.Error("scenario exercised no faults; weak test")
	}
}

func TestReliableSeedChangesOutcome(t *testing.T) {
	run := func(seed uint64) Stats {
		e, w, links := reliableRig(t, false, seed)
		w.SendRetries = 8
		for _, l := range links {
			l.SetLoss(flownet.Loss{Drop: 0.4, Corrupt: 0.4, Dup: 0.4})
		}
		reliableSendRecv(t, e, w, 4096)
		return w.Stats()
	}
	base := run(1)
	for seed := uint64(2); seed < 16; seed++ {
		if run(seed) != base {
			return
		}
	}
	t.Error("15 different seeds produced identical fault outcomes")
}
