// Reliable-delivery envelope for inter-node messages.
//
// When World.Reliable is on, every inter-node send is driven through an
// envelope implementing the protocol that defeats a lossy, corrupting wire:
//
//	sender                                receiver
//	  │ attempt n: data flow (fwd path)      │
//	  ├────────────────────────────────────►─┤  per-link fault draws at
//	  │                                      │  flow completion:
//	  │                        drop → withheld (sender RTO retransmits)
//	  │                     corrupt → bytes land flipped, checksum fails,
//	  │                               NACK → retransmit after backoff
//	  │                         dup → second copy arrives, deduplicated
//	  │                               by sequence number, re-ACKed
//	  │ ◄──────────────────────────────────┤  ACK/NACK control flow (rev
//	  │   ACK: done     NACK: attempt n+1     path, itself droppable)
//
// Retransmissions back off exponentially and are capped at SendRetries
// attempts. The final attempt escalates to the transport's reliable channel:
// drop and duplication are suppressed so the protocol always terminates, but
// corruption can still land — the delivery is then accepted *compromised*
// (Stats().Exhausted, OnDeliver with compromised=true) and the exchange
// layer's end-to-end halo verification is the backstop that repairs it.
//
// Determinism: every fault decision and corruption pattern is a pure FNV-1a
// hash of (DeliverySeed, link, endpoints, sequence number, attempt, purpose)
// mapped to [0,1). No shared PRNG stream is consumed, so outcomes do not
// depend on the order concurrent messages sample in: runs are bit-identical
// across reruns, worker counts, and RNG-stream interleavings. All protocol
// state mutates in engine event context; payload byte copies ride the
// deferred executor exactly like unreliable transfers.
package mpi

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"

	"github.com/nodeaware/stencil/internal/cudart"
	"github.com/nodeaware/stencil/internal/flownet"
	"github.com/nodeaware/stencil/internal/sim"
)

// ctlBytes is the wire size of an ACK/NACK control message.
const ctlBytes = 64

// envelope is one reliable inter-node message in flight. Both protocol ends
// live in this one object: the simulation orchestrates sender and receiver
// state machines together, in virtual time.
type envelope struct {
	w           *World
	name        string
	fwd, rev    []*flownet.Link
	bytes       float64
	src, dst    int
	tag         int
	seq         uint64
	sum         uint64             // FNV-1a of the payload at send time (0 in time-only mode)
	commit      func(bool, uint64) // land the payload (corrupt verdict, corruption key)
	check       func() uint64      // recompute the landed checksum (nil when deferred/time-only)
	onAccept    func()             // optional: receiver accepted a copy (before the ACK returns)
	onDone      func()
	maxAttempts int
	rtoBase     sim.Time
	backoff     sim.Time

	cur       int  // current attempt number
	accepted  bool // receiver committed an accepted copy
	finished  bool // sender saw the ACK; onDone fired
	advancing bool // a retransmission is already scheduled
	attemptAt sim.Time
	timer     *sim.Event
	flow      *flownet.Flow
}

// hash64 is the deterministic decision hash shared by fault draws and
// corruption keys.
func (w *World) hash64(link string, src, dst int, seq uint64, attempt int, purpose byte) uint64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], w.DeliverySeed)
	h.Write(b[:])
	h.Write([]byte(link))
	binary.LittleEndian.PutUint64(b[:], uint64(uint32(src))|uint64(uint32(dst))<<32)
	h.Write(b[:])
	binary.LittleEndian.PutUint64(b[:], seq)
	h.Write(b[:])
	binary.LittleEndian.PutUint64(b[:], uint64(attempt))
	h.Write(b[:])
	h.Write([]byte{purpose})
	// FNV-1a's final multiply barely moves the high bits for inputs that
	// differ only in the trailing purpose byte, which would correlate the
	// drop/corrupt/dup draws of one arrival. Finish with a full avalanche
	// (Murmur3 fmix64) so every decision is an independent variate.
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// draw maps one decision hash to a uniform variate in [0,1).
func (w *World) draw(link string, src, dst int, seq uint64, attempt int, purpose byte) float64 {
	return float64(w.hash64(link, src, dst, seq, attempt, purpose)>>11) / (1 << 53)
}

// fnvSum is the envelope's payload checksum.
func fnvSum(data []byte) uint64 {
	h := fnv.New64a()
	h.Write(data)
	return h.Sum64()
}

// corruptPayload deterministically flips bytes of a landed payload region.
// The XOR masks are nonzero, so every flip changes its byte and a corrupted
// delivery is always detectable by checksum.
func corruptPayload(buf *cudart.Buffer, off, n int64, key uint64) {
	data := buf.Data()
	if data == nil || n <= 0 {
		return
	}
	region := data[off : off+n]
	flips := 1 + int(key%7)
	for i := 0; i < flips; i++ {
		pos := (key>>8 + uint64(i)*2654435761) % uint64(n)
		region[pos] ^= byte(0x5A + 31*i)
	}
}

// reliableSend drives one inter-node message through the envelope. commit is
// invoked in event context at each delivery with the corruption verdict and
// a per-delivery corruption key; onDone fires exactly once, when the sender
// completes (ACK received). check, when non-nil, recomputes the landed
// payload checksum for the post-commit integrity self-checks.
func (w *World) reliableSend(name string, fwd, rev []*flownet.Link, send, recv *Request,
	commit func(corrupt bool, key uint64), check func() uint64, onDone func()) {
	if w.seqs == nil {
		w.seqs = make(map[[2]int]uint64)
	}
	pair := [2]int{send.rank.ID, recv.rank.ID}
	w.seqs[pair]++
	w.reliableSendSeq(name, fwd, rev, send, recv, w.seqs[pair], commit, check, nil, onDone)
}

// reliableSendSeq is reliableSend with an explicit sequence number and an
// optional acceptance hook. Persistent channels (persistent.go) own their
// sequence state — one monotone counter per channel, kept in a namespace
// disjoint from the per-pair counters — so fault draws depend only on the
// channel and its message index, never on the issue order of unrelated
// messages. onAccept, when non-nil, fires exactly once, in event context, the
// moment the receiver accepts a copy (before the ACK control flow returns to
// the sender); onDone still fires only when the sender sees the ACK.
func (w *World) reliableSendSeq(name string, fwd, rev []*flownet.Link, send, recv *Request,
	seq uint64, commit func(corrupt bool, key uint64), check func() uint64,
	onAccept, onDone func()) {
	env := &envelope{
		w:        w,
		name:     name,
		fwd:      fwd,
		rev:      rev,
		bytes:    float64(send.bytes),
		src:      send.rank.ID,
		dst:      recv.rank.ID,
		tag:      send.tag,
		seq:      seq,
		commit:   commit,
		check:    check,
		onAccept: onAccept,
		onDone:   onDone,
	}
	if data := send.buf.Data(); data != nil {
		env.sum = fnvSum(data[send.off : send.off+send.bytes])
	}
	env.maxAttempts = w.SendRetries
	if env.maxAttempts <= 0 {
		env.maxAttempts = 8
	}
	env.rtoBase = w.SendTimeout
	if env.rtoBase <= 0 {
		// Derive a retransmission timeout from the uncontended transfer time
		// over the path's narrowest hop plus control-message latencies. The
		// headroom absorbs ordinary contention; heavy congestion may still
		// trigger a spurious retransmit, which the receiver deduplicates.
		minCap := math.Inf(1)
		for _, l := range fwd {
			if l.BaseCapacity() < minCap {
				minCap = l.BaseCapacity()
			}
		}
		env.rtoBase = sim.Time(8*env.bytes/minCap) + 16*w.M.Params.MPIInterLatency
	}
	env.backoff = w.SendBackoff
	if env.backoff <= 0 {
		env.backoff = env.rtoBase / 4
	}
	w.stats.Messages++
	if w.OnEnvelopeAlloc != nil {
		w.OnEnvelopeAlloc(envelopeStateBytes)
	}
	env.attempt(0)
}

// envelopeStateBytes approximates the host footprint of one envelope's
// protocol state (the struct, its timer event, and ACK/NACK bookkeeping),
// reported through World.OnEnvelopeAlloc for the cost ledger. A fixed
// estimate keeps the report deterministic and cheap; the interesting signal
// is the count, which is exact.
const envelopeStateBytes = 256

// reliableTransfer is reliableSend for process code: park until the sender
// completes. The landed-checksum self-check is only possible here, where the
// commit is synchronous.
func (w *World) reliableTransfer(pr *sim.Proc, name string, fwd, rev []*flownet.Link,
	send, recv *Request, commit func(corrupt bool, key uint64)) {
	done := sim.NewSignal(w.M.Eng, name+".reliable")
	var check func() uint64
	if recv.buf.Data() != nil {
		check = func() uint64 {
			return fnvSum(recv.buf.Data()[recv.off : recv.off+recv.bytes])
		}
	}
	w.reliableSend(name, fwd, rev, send, recv, commit, check, done.Fire)
	done.Wait(pr)
}

// expBackoff doubles a base duration per attempt, capped at 2^6.
func expBackoff(base sim.Time, n int) sim.Time {
	if n > 6 {
		n = 6
	}
	return base * sim.Time(int64(1)<<n)
}

func (env *envelope) proto(kind, link string, attempt int) {
	if env.w.OnProtocol != nil {
		env.w.OnProtocol(env.w.M.Eng.Now(), kind, link, env.src, env.dst, env.seq, attempt)
	}
}

// attempt starts data attempt n: a fresh flow over the forward path, with an
// RTO timer armed for every attempt but the last (the final attempt's
// delivery is guaranteed, so no timer is needed and the protocol terminates).
func (env *envelope) attempt(n int) {
	if env.finished {
		return
	}
	w := env.w
	env.cur = n
	env.advancing = false
	env.attemptAt = w.M.Eng.Now()
	if n > 0 {
		w.stats.Retransmits++
		env.proto("retransmit", "", n)
	}
	env.flow = w.M.Net.StartFlow(env.name, env.fwd, env.bytes)
	env.flow.Done().OnFire(func() { env.arrive(n) })
	if n < env.maxAttempts-1 {
		env.timer = w.M.Eng.After(expBackoff(env.rtoBase, n), func() { env.timeout(n) })
	} else {
		env.timer = nil
	}
}

// timeout fires when attempt n's RTO expires without an ACK: abort whatever
// is still in flight and retransmit after the backoff.
func (env *envelope) timeout(n int) {
	if env.finished || n != env.cur || env.advancing {
		return
	}
	w := env.w
	if env.flow != nil {
		w.M.Net.Abort(env.flow) // no-op if the data already arrived
	}
	env.recordAttempt(n)
	// A timeout cannot name the guilty hop; charge the whole forward path so
	// health scoring sees trouble on any of its links.
	for _, l := range env.fwd {
		w.linkFault(l)
	}
	env.advance(n, env.backoff)
}

// advance schedules attempt n+1 after delay, exactly once per attempt.
func (env *envelope) advance(n int, delay sim.Time) {
	if env.finished || n != env.cur || env.advancing {
		return
	}
	env.advancing = true
	if env.timer != nil {
		env.timer.Cancel()
		env.timer = nil
	}
	env.w.M.Eng.After(delay, func() { env.attempt(n + 1) })
}

// recordAttempt surfaces retransmitted attempts in the op timeline.
func (env *envelope) recordAttempt(n int) {
	w := env.w
	if n == 0 || w.RT == nil || w.RT.OnOp == nil {
		return
	}
	w.RT.Record(cudart.OpRecord{
		Kind: cudart.OpRetransmit, Name: env.name, Device: -1, Stream: "wire",
		Start: env.attemptAt, End: w.M.Eng.Now(), Bytes: int64(env.bytes),
	})
}

// arrive runs at attempt n's flow completion: sample each lossy link of the
// forward path for drop/corrupt/dup, then deliver what survived.
func (env *envelope) arrive(n int) {
	if env.finished {
		return
	}
	env.recordAttempt(n)
	w := env.w
	final := n >= env.maxAttempts-1
	corrupt := false
	dupLink := ""
	for _, l := range env.fwd {
		ls := l.Loss()
		if ls.Zero() {
			continue
		}
		if !final && ls.Drop > 0 && w.draw(l.Name, env.src, env.dst, env.seq, n, 'D') < ls.Drop {
			w.stats.Drops++
			w.linkFault(l)
			env.proto("drop", l.Name, n)
			return // withheld; the sender's RTO drives a retransmission
		}
		if ls.Corrupt > 0 && w.draw(l.Name, env.src, env.dst, env.seq, n, 'C') < ls.Corrupt {
			if !corrupt {
				w.stats.Corrupts++
			}
			corrupt = true
			w.linkFault(l)
			env.proto("corrupt", l.Name, n)
		}
		if !final && dupLink == "" && ls.Dup > 0 && w.draw(l.Name, env.src, env.dst, env.seq, n, 'P') < ls.Dup {
			// Record only: a later link may still draw a drop and withhold
			// the whole message, in which case no duplicate is delivered and
			// neither the counter nor the event should fire.
			dupLink = l.Name
		}
	}
	if dupLink != "" {
		w.stats.Dups++
		env.proto("dup", dupLink, n)
	}
	env.deliver(n, corrupt, final)
	if dupLink != "" {
		// The duplicate copy trails the original by the wire latency and is
		// deduplicated by sequence number.
		w.M.Eng.After(w.M.Params.MPIInterLatency, func() { env.deliver(n, corrupt, final) })
	}
}

// deliver is the receiver side of one arriving copy.
func (env *envelope) deliver(n int, corrupt, final bool) {
	w := env.w
	if env.accepted {
		// Sequence number already accepted: a duplicate (or a spurious
		// retransmission after a lost ACK). Dedup takes precedence over the
		// copy's corruption verdict — even a corrupt copy must not commit a
		// single byte over the accepted payload. Drop it, re-ACK.
		w.stats.Dedups++
		env.proto("dedup", "", n)
		env.sendCtl(true, n, final)
		return
	}
	key := w.hash64(env.name, env.src, env.dst, env.seq, n, 'K')
	if corrupt && !final {
		// The flipped bytes really land, the checksum mismatch is detected,
		// and the copy is rejected; a clean retransmission overwrites it.
		env.commit(true, key)
		if env.check != nil && env.sum != 0 && env.check() == env.sum {
			panic(fmt.Sprintf("mpi: corrupt delivery %s seq %d left the checksum intact", env.name, env.seq))
		}
		w.stats.Nacks++
		env.proto("nack", "", n)
		env.sendCtl(false, n, final)
		return
	}
	env.accepted = true
	env.commit(corrupt, key)
	if corrupt {
		// Attempt cap reached with a corrupt payload: the wire gives up on
		// integrity and delivers what it has. End-to-end verification in the
		// exchange layer is the backstop.
		w.stats.Exhausted++
		env.proto("exhausted", "", n)
	} else if env.check != nil && env.sum != 0 && env.check() != env.sum {
		panic(fmt.Sprintf("mpi: clean delivery %s seq %d failed its checksum", env.name, env.seq))
	}
	if env.onAccept != nil {
		env.onAccept()
	}
	if w.OnDeliver != nil {
		w.OnDeliver(w.M.Eng.Now(), env.src, env.dst, env.tag, corrupt)
	}
	env.sendCtl(true, n, final)
}

// sendCtl returns an ACK or NACK to the sender as a real control flow on the
// reverse path, itself subject to drop on lossy links — except after the
// final data attempt, where the transport escalates to its reliable control
// channel so the protocol always terminates.
func (env *envelope) sendCtl(ack bool, n int, final bool) {
	w := env.w
	kind := "ack"
	if !ack {
		kind = "nack"
	}
	f := w.M.Net.StartFlow(env.name+"."+kind, env.rev, ctlBytes)
	f.Done().OnFire(func() {
		if !final {
			for _, l := range env.rev {
				ls := l.Loss()
				if ls.Drop > 0 && w.draw(l.Name, env.src, env.dst, env.seq, n, 'A') < ls.Drop {
					w.stats.AckDrops++
					w.linkFault(l)
					env.proto("ackdrop", l.Name, n)
					return // the sender's RTO covers lost control messages
				}
			}
		}
		if ack {
			env.ackArrived()
		} else {
			env.nackArrived(n)
		}
	})
}

// ackArrived completes the send: cancel the RTO, fire onDone exactly once.
func (env *envelope) ackArrived() {
	if env.finished {
		return
	}
	env.finished = true
	if env.timer != nil {
		env.timer.Cancel()
		env.timer = nil
	}
	env.onDone()
}

// nackArrived reacts to a checksum rejection of attempt n: retransmit after
// the backoff instead of waiting out the full RTO. Stale NACKs (a later
// attempt is already current) are ignored.
func (env *envelope) nackArrived(n int) {
	if env.finished || env.accepted {
		return
	}
	env.advance(n, expBackoff(env.backoff, n))
}
