// Package mpi is a simulated Message Passing Interface for the machine
// model.
//
// Ranks are simulated processes placed on nodes and sockets. The package
// provides the non-blocking point-to-point operations the paper's library
// uses (Isend/Irecv/Wait), a barrier, and two transports:
//
//   - Host transport: messages between pinned host buffers. Intra-node
//     messages are shared-memory copies that occupy the receiving rank's
//     serial progress engine for their duration — this is why one rank
//     driving six GPUs is the slowest STAGED configuration and six ranks the
//     fastest (paper Fig 12a). Inter-node messages cross the NIC links and
//     only briefly occupy the progress engine.
//
//   - CUDA-aware transport: device buffers passed straight to MPI. Per the
//     paper's profiling (§IV-D), the implementation routes its internal
//     copies through the device's legacy default stream (which synchronizes
//     with all other streams on the device) and issues device-wide
//     synchronization per message, re-exchanging buffer handles every time.
//     These pathologies are modelled explicitly and are what make CUDA-aware
//     weak scaling degrade in Fig 12c.
package mpi

import (
	"fmt"
	"math"

	"github.com/nodeaware/stencil/internal/cudart"
	"github.com/nodeaware/stencil/internal/flownet"
	"github.com/nodeaware/stencil/internal/machine"
	"github.com/nodeaware/stencil/internal/sim"
)

// World is a communicator covering all ranks of a job.
type World struct {
	M         *machine.Machine
	RT        *cudart.Runtime
	CUDAAware bool
	ranks     []*Rank

	// SendTimeout enables timeout/retry semantics for inter-node messages:
	// a wire transfer still incomplete after this much virtual time is
	// aborted and re-driven from the start (modelling transport-level
	// retransmission after a NIC or link fault). Zero disables retries.
	SendTimeout sim.Time
	// SendBackoff is the wait between retry attempts; zero uses SendTimeout.
	SendBackoff sim.Time
	// SendRetries caps the number of retry attempts per message; after the
	// cap the message is driven to completion without further aborts (the
	// simulation never loses a message — a crawling link is eventually
	// restored or the flow's residual trickle finishes). Zero means 8.
	// Hitting the cap is a real hazard — the final attempt runs with no
	// deadline — so it is counted in Stats().RetryExhausted and reported
	// through OnRetryExhausted rather than passing silently. The same value
	// caps the reliable-delivery envelope's attempts (see Reliable).
	SendRetries int
	// Retries counts retry attempts actually taken, for reporting.
	Retries int
	// OnRetry, when set, observes every timed-out-and-aborted send attempt
	// (the wire transfer's name and the 1-based attempt number that was
	// abandoned). Must be passive: telemetry, not control flow.
	OnRetry func(t sim.Time, name string, attempt int)
	// OnRetryExhausted, when set, observes every send whose retry budget ran
	// out, at the moment the unabortable final attempt starts (attempts is
	// the number of aborted attempts that preceded it). Must be passive.
	OnRetryExhausted func(t sim.Time, name string, attempts int)

	// Reliable enables the reliable-delivery envelope for inter-node
	// messages: per-message checksums and sequence numbers, receiver-side
	// dedup, ACK/NACK control flows, and retransmission under exponential
	// backoff with an attempt cap (see reliable.go). Armed automatically
	// when a fault scenario containing delivery faults is installed; it can
	// also be forced on to measure protocol overhead on a clean network.
	Reliable bool
	// DeliverySeed keys the deterministic hash-based PRNG behind delivery
	// faults and corruption patterns. Every decision hashes
	// (seed, link, endpoints, sequence, attempt, purpose), so outcomes are
	// independent of the order concurrent messages sample in — bit-identical
	// across reruns, worker counts, and RNG-stream interleavings.
	DeliverySeed uint64
	// OnProtocol, when set, observes reliable-envelope protocol actions
	// (drop, corrupt, dup, dedup, retransmit, nack, ackdrop, exhausted).
	// link is empty for end-to-end actions. Must be passive.
	OnProtocol func(t sim.Time, kind, link string, src, dst int, seq uint64, attempt int)
	// OnEnvelopeAlloc, when set, observes every reliable-envelope
	// allocation (one per inter-node message when Reliable is on) with the
	// approximate host bytes its protocol state retains while in flight.
	// Must be passive: the cost ledger reads it, nothing else may.
	OnEnvelopeAlloc func(bytes int64)
	// OnDeliver, when set, observes every reliable-envelope acceptance.
	// compromised marks a delivery that exhausted its attempt cap with a
	// corrupt payload — the wire gave up on integrity and the exchange
	// layer's end-to-end verification is the backstop. Must be passive.
	OnDeliver func(t sim.Time, src, dst, tag int, compromised bool)

	stats      Stats
	seqs       map[[2]int]uint64     // per-(src,dst) send sequence numbers
	channels   map[chanKey]*Channel  // persistent envelope channels (persistent.go)
	linkFaults map[*flownet.Link]int // protocol faults charged per link

	barrierCount int
	barrierSig   *sim.Signal
	collectives  *coll

	// active counts ranks still participating in barriers and allreduces;
	// deactivated marks ranks evicted by the recovery layer after a
	// permanent failure.
	active      int
	deactivated []bool
}

// Rank is one MPI process.
type Rank struct {
	world  *World
	ID     int
	Node   int
	Socket int
	// progress is the rank's serial MPI progress engine.
	progress *sim.Resource
	// failed marks the rank's process as permanently dead (fault.RankFail).
	failed bool
	// copyEngine bounds the rank's shared-memory copy rate to one core's
	// memcpy bandwidth; recruiting more ranks recruits more copy engines.
	copyEngine *flownet.Link
	// Posted receives and unexpected sends, keyed by (src, tag).
	recvs map[matchKey][]*Request
	sends map[matchKey][]*Request
}

type matchKey struct {
	peer int // the other rank
	tag  int
}

// NewWorld creates ranksPerNode ranks on every node of the machine. Ranks
// are block-distributed: rank r lives on node r/ranksPerNode, and its host
// buffers and progress engine sit on socket
// (r mod ranksPerNode) * sockets / ranksPerNode.
func NewWorld(m *machine.Machine, rt *cudart.Runtime, ranksPerNode int, cudaAware bool) *World {
	if ranksPerNode < 1 {
		panic(fmt.Sprintf("mpi: ranksPerNode %d", ranksPerNode))
	}
	w := &World{M: m, RT: rt, CUDAAware: cudaAware}
	for n := range m.Nodes {
		sockets := m.Nodes[n].Config.Sockets
		for l := 0; l < ranksPerNode; l++ {
			id := n*ranksPerNode + l
			r := &Rank{
				world:      w,
				ID:         id,
				Node:       n,
				Socket:     l * sockets / ranksPerNode,
				progress:   sim.NewResource(m.Eng, fmt.Sprintf("rank%d.progress", id), 1),
				copyEngine: flownet.NewLink(fmt.Sprintf("rank%d.copy", id), m.Params.ShmCopyBW),
				recvs:      make(map[matchKey][]*Request),
				sends:      make(map[matchKey][]*Request),
			}
			w.ranks = append(w.ranks, r)
		}
	}
	w.active = len(w.ranks)
	w.deactivated = make([]bool, len(w.ranks))
	return w
}

// Stats is a snapshot of the world's transport counters. Retries covers the
// legacy timeout/abort policy; the remaining protocol counters are produced
// by the reliable-delivery envelope (Reliable).
type Stats struct {
	Retries        int // timed-out-and-aborted send attempts (startFlowRetry)
	RetryExhausted int // sends whose capped final attempt ran unaborted
	Messages       int // messages driven through the reliable envelope
	Retransmits    int // envelope retransmissions (RTO expiry or NACK)
	Drops          int // data deliveries withheld by a lossy link
	AckDrops       int // control deliveries withheld by a lossy link
	Corrupts       int // deliveries with flipped payload bytes
	Dups           int // deliveries duplicated by a lossy link
	Dedups         int // duplicate deliveries suppressed by sequence number
	Nacks          int // checksum-mismatch rejections sent by the receiver
	Exhausted      int // deliveries accepted compromised after the attempt cap
}

// Stats returns a snapshot of the world's transport counters.
func (w *World) Stats() Stats {
	s := w.stats
	s.Retries = w.Retries
	return s
}

// linkFault charges one protocol fault (drop, corruption, or timeout) to a
// link, for health scoring.
func (w *World) linkFault(l *flownet.Link) {
	if w.linkFaults == nil {
		w.linkFaults = make(map[*flownet.Link]int)
	}
	w.linkFaults[l]++
}

// LinkFaults returns the cumulative protocol faults charged to the link:
// messages dropped or corrupted on it, plus timeouts charged to every link of
// the timed-out path (a timeout cannot name the guilty hop). Health scoring
// in the exchange layer consumes deltas of this counter.
func (w *World) LinkFaults(l *flownet.Link) int { return w.linkFaults[l] }

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// Rank returns rank id.
func (w *World) Rank(id int) *Rank { return w.ranks[id] }

// Fail marks the rank's process permanently dead (fail-stop). The rank may
// keep "executing" in virtual time until the failure is detected — the
// zombie window — so messaging still works; the recovery layer converts the
// flag into a Deactivate at its next consistency point.
func (r *Rank) Fail() { r.failed = true }

// Failed reports whether Fail has been called.
func (r *Rank) Failed() bool { return r.failed }

// Deactivate evicts a rank from the collectives: subsequent Barrier and
// Allreducer calls complete once every *active* rank has arrived, and the
// evicted rank must not call them (or Isend/Irecv) again. It must be called
// at a point where no rank is parked inside a barrier or allreduce —
// between iterations, at the exchange layer's recovery line. The tree
// collectives in collectives.go still span the full world and cannot be
// used after a deactivation.
func (w *World) Deactivate(id int) {
	if w.deactivated[id] {
		return
	}
	if w.barrierCount != 0 {
		panic(fmt.Sprintf("mpi: Deactivate(%d) with %d ranks parked in a barrier", id, w.barrierCount))
	}
	w.deactivated[id] = true
	w.active--
	if w.active < 1 {
		panic("mpi: every rank deactivated")
	}
}

// Deactivated reports whether the rank has been evicted from collectives.
func (w *World) Deactivated(id int) bool { return w.deactivated[id] }

// ActiveSize returns the number of ranks still participating in collectives.
func (w *World) ActiveSize() int { return w.active }

// Wtime returns the current virtual time (MPI_Wtime).
func (w *World) Wtime() sim.Time { return w.M.Eng.Now() }

// Request is a pending non-blocking operation (MPI_Request).
type Request struct {
	done   *sim.Signal
	rank   *Rank
	buf    *cudart.Buffer
	off    int64
	bytes  int64
	tag    int
	isSend bool
}

// Wait parks the process until the operation completes (MPI_Wait).
func (r *Request) Wait(p *sim.Proc) { r.done.Wait(p) }

// Test reports whether the operation has completed (MPI_Test).
func (r *Request) Test() bool { return r.done.Fired() }

// Done exposes the completion signal (for WaitAny-style polling loops).
func (r *Request) Done() *sim.Signal { return r.done }

// Waitall parks the process until every request completes (MPI_Waitall).
func Waitall(p *sim.Proc, reqs ...*Request) {
	for _, r := range reqs {
		r.Wait(p)
	}
}

// Isend posts a non-blocking send of bytes from buf[off:] to rank dst with
// the given tag. The buffer may be a pinned host buffer or, when the world
// is CUDA-aware, a device buffer.
func (r *Rank) Isend(dst, tag int, buf *cudart.Buffer, off, bytes int64) *Request {
	r.checkDeactivated(dst)
	r.checkBuf(buf)
	req := &Request{
		done:   sim.NewSignal(r.world.M.Eng, fmt.Sprintf("send %d->%d tag %d", r.ID, dst, tag)),
		rank:   r,
		buf:    buf,
		off:    off,
		bytes:  bytes,
		tag:    tag,
		isSend: true,
	}
	key := matchKey{peer: r.ID, tag: tag}
	dr := r.world.ranks[dst]
	if lst := dr.recvs[key]; len(lst) > 0 {
		recv := lst[0]
		dr.recvs[key] = lst[1:]
		r.world.transfer(req, recv)
	} else {
		dr.sends[key] = append(dr.sends[key], req)
	}
	return req
}

// Irecv posts a non-blocking receive into buf[off:] from rank src with the
// given tag.
func (r *Rank) Irecv(src, tag int, buf *cudart.Buffer, off, bytes int64) *Request {
	r.checkDeactivated(src)
	r.checkBuf(buf)
	req := &Request{
		done:  sim.NewSignal(r.world.M.Eng, fmt.Sprintf("recv %d<-%d tag %d", r.ID, src, tag)),
		rank:  r,
		buf:   buf,
		off:   off,
		bytes: bytes,
		tag:   tag,
	}
	key := matchKey{peer: src, tag: tag}
	if lst := r.sends[key]; len(lst) > 0 {
		send := lst[0]
		r.sends[key] = lst[1:]
		r.world.transfer(send, req)
	} else {
		r.recvs[key] = append(r.recvs[key], req)
	}
	return req
}

// PauseProgress occupies the rank's serial MPI progress engine for d virtual
// seconds, modelling an OS-noise stall or a hung progress thread: queued
// shared-memory receives and per-message CPU work wait it out. The pause is
// asynchronous; it queues FIFO behind in-flight progress work.
func (r *Rank) PauseProgress(d sim.Time) {
	r.world.M.Eng.Spawn(fmt.Sprintf("rank%d.pause", r.ID), func(p *sim.Proc) {
		r.progress.Use(p, func() { p.Sleep(d) })
	})
}

// checkDeactivated panics when either endpoint of a message has been evicted
// by the recovery layer: post-recovery transfer plans must never reference a
// dead rank, so any such message is a bug surfaced immediately. (A *failed*
// but not-yet-deactivated rank may still message — that is the zombie
// window before detection.)
func (r *Rank) checkDeactivated(peer int) {
	if r.world.deactivated[r.ID] {
		panic(fmt.Sprintf("mpi: message posted by deactivated rank %d", r.ID))
	}
	if r.world.deactivated[peer] {
		panic(fmt.Sprintf("mpi: rank %d posted a message to deactivated rank %d", r.ID, peer))
	}
}

func (r *Rank) checkBuf(buf *cudart.Buffer) {
	if buf.Host() {
		return
	}
	if buf.Device() == nil {
		panic("mpi: buffer is neither host nor device")
	}
	if !r.world.CUDAAware {
		panic("mpi: device buffer passed to MPI without CUDA-aware support")
	}
}

// transfer moves the message. The smaller of send.bytes/recv.bytes is
// transferred (MPI truncation is an application error; we require equality).
func (w *World) transfer(send, recv *Request) {
	if send.bytes != recv.bytes {
		panic(fmt.Sprintf("mpi: message size mismatch: send %d recv %d", send.bytes, recv.bytes))
	}
	deviceMsg := !send.buf.Host() || !recv.buf.Host()
	if deviceMsg {
		w.cudaAwareTransfer(send, recv)
		return
	}
	w.hostTransfer(send, recv)
}

// startFlowRetry starts a wire transfer under the world's timeout/retry
// policy and invokes onDone exactly once, when an attempt finally completes.
// With retries disabled it degenerates to a plain flow. An attempt that is
// still in flight after SendTimeout is aborted (bytes moved so far are
// discarded, as a transport retransmission would) and re-driven after the
// backoff; past the retry cap the last attempt runs to completion unaborted.
func (w *World) startFlowRetry(name string, path []*flownet.Link, bytes float64, onDone func()) {
	eng := w.M.Eng
	if w.SendTimeout <= 0 {
		f := w.M.Net.StartFlow(name, path, bytes)
		f.Done().OnFire(onDone)
		return
	}
	backoff := w.SendBackoff
	if backoff <= 0 {
		backoff = w.SendTimeout
	}
	maxRetries := w.SendRetries
	if maxRetries <= 0 {
		maxRetries = 8
	}
	var attempt func(n int)
	attempt = func(n int) {
		f := w.M.Net.StartFlow(name, path, bytes)
		f.Done().OnFire(onDone)
		if n >= maxRetries {
			// Retry budget exhausted: this final attempt has no deadline and
			// is never aborted — on a crawling link it rides the residual
			// trickle to completion, however long that takes. Surface the
			// hazard instead of letting it pass silently.
			w.stats.RetryExhausted++
			if w.OnRetryExhausted != nil {
				w.OnRetryExhausted(eng.Now(), name, n)
			}
			return
		}
		eng.After(w.SendTimeout, func() {
			if f.Done().Fired() {
				return
			}
			w.M.Net.Abort(f)
			w.Retries++
			// A timeout cannot name the guilty hop; charge the whole path so
			// health scoring sees trouble on any of its links.
			for _, l := range path {
				w.linkFault(l)
			}
			if w.OnRetry != nil {
				w.OnRetry(eng.Now(), name, n+1)
			}
			eng.After(backoff, func() { attempt(n + 1) })
		})
	}
	attempt(0)
}

// transferRetry is startFlowRetry for process code: park until the message
// lands.
func (w *World) transferRetry(pr *sim.Proc, name string, path []*flownet.Link, bytes float64) {
	done := sim.NewSignal(w.M.Eng, name+".retrydone")
	w.startFlowRetry(name, path, bytes, done.Fire)
	done.Wait(pr)
}

// hostTransfer implements the host-buffer transport.
func (w *World) hostTransfer(send, recv *Request) {
	p := w.M.Params
	srcRank, dstRank := send.rank, recv.rank
	intra := srcRank.Node == dstRank.Node
	w.M.Eng.Spawn(fmt.Sprintf("mpi.xfer.%d-%d", srcRank.ID, dstRank.ID), func(pr *sim.Proc) {
		lat := p.MPIInterLatency
		if intra {
			lat = p.MPIIntraLatency
		}
		if float64(send.bytes) > p.EagerLimit {
			lat += p.RendezvousCost
		}
		pr.Sleep(lat)
		path := w.M.HostToHostPath(srcRank.Node, srcRank.Socket, dstRank.Node, dstRank.Socket)
		start := pr.Now()
		name := "mpi.nic"
		if intra {
			name = "mpi.shm"
			// Shared-memory copy: occupies the receiving rank's progress
			// engine for the duration of the copy, at the rate of one core's
			// copy loop.
			dstRank.progress.Acquire(pr)
			w.M.Net.Transfer(pr, "mpi.shm", append(path, dstRank.copyEngine), float64(send.bytes))
			dstRank.progress.Release()
			commitCopy(recv.buf, recv.off, send.buf, send.off, send.bytes)
		} else if w.Reliable {
			// NIC DMA under the reliable-delivery envelope: the payload is
			// committed (possibly more than once, possibly corrupted and then
			// overwritten) at each delivery inside the envelope; the proc
			// parks until the sender sees the ACK.
			dstRank.progress.Use(pr, func() { pr.Sleep(p.MPIIntraLatency) })
			rev := w.M.HostToHostPath(dstRank.Node, dstRank.Socket, srcRank.Node, srcRank.Socket)
			w.reliableTransfer(pr, "mpi.nic", path, rev, send, recv, func(corrupt bool, key uint64) {
				commitCopy(recv.buf, recv.off, send.buf, send.off, send.bytes)
				if corrupt {
					corruptPayload(recv.buf, recv.off, send.bytes, key)
				}
			})
		} else {
			// NIC DMA: the progress engine is held only for per-message CPU
			// work; the wire transfer proceeds without it.
			dstRank.progress.Use(pr, func() { pr.Sleep(p.MPIIntraLatency) })
			w.transferRetry(pr, "mpi.nic", path, float64(send.bytes))
			commitCopy(recv.buf, recv.off, send.buf, send.off, send.bytes)
		}
		if w.RT != nil && w.RT.OnOp != nil {
			// Host-side staging copies are CPU work a profiler would
			// attribute to MPI; surface them in the op timeline too.
			w.RT.Record(cudart.OpRecord{
				Kind: cudart.OpMemcpyH2H, Name: name, Device: -1,
				Stream: "host", Start: start, End: pr.Now(), Bytes: send.bytes,
			})
		}
		send.done.Fire()
		recv.done.Fire()
	})
}

// cudaAwareTransfer implements the device-buffer transport with the paper's
// observed pathologies: per-message handle exchange, internal copies on the
// legacy default stream (device-wide serialization), chunked pipelining with
// per-chunk issue cost, and a device synchronization per message.
func (w *World) cudaAwareTransfer(send, recv *Request) {
	p := w.M.Params
	sdev, ddev := send.buf.Device(), recv.buf.Device()
	if sdev == nil || ddev == nil {
		panic("mpi: CUDA-aware transfer requires device buffers on both sides")
	}
	srcRank, dstRank := send.rank, recv.rank
	intra := srcRank.Node == dstRank.Node
	eng := w.M.Eng
	eng.Spawn(fmt.Sprintf("mpi.ca.%d-%d", srcRank.ID, dstRank.ID), func(pr *sim.Proc) {
		lat := p.MPIInterLatency
		if intra {
			lat = p.MPIIntraLatency
		}
		if float64(send.bytes) > p.EagerLimit {
			lat += p.RendezvousCost
		}
		// Per-message buffer registration / IPC handle exchange, every time
		// (the paper's COLOCATEDMEMCPY wins precisely because it does this
		// once at setup).
		pr.Sleep(lat + p.CudaAwarePerMsg)

		path := w.M.DevToDevRemotePath(sdev.Node, sdev.Local, ddev.Node, ddev.Local)
		chunks := int64(math.Ceil(float64(send.bytes) / p.CudaAwareChunk))
		if chunks < 1 {
			chunks = 1
		}
		issue := sim.Time(float64(chunks)) * p.CudaAwareChunkCost

		// Legacy default stream semantics: the internal copy cannot begin
		// until all currently enqueued work on the sending device has
		// drained, and it serializes against the device's other CUDA-aware
		// messages via the default stream.
		deps := []*sim.Signal{sdev.AllWorkEvent()}
		copyDone := sdev.DefaultStream().Enqueue(func(done *sim.Signal) {
			eng.After(issue, func() {
				// Pure payload: run the byte copy on the deferred executor
				// under both devices' keys; completion signals and protocol
				// decisions stay in event context.
				commit := func(corrupt bool, key uint64) {
					eng.Defer(func() {
						commitCopy(recv.buf, recv.off, send.buf, send.off, send.bytes)
						if corrupt {
							corruptPayload(recv.buf, recv.off, send.bytes, key)
						}
					}, int32(sdev.ID), int32(ddev.ID))
				}
				if w.Reliable && !intra {
					rev := w.M.DevToDevRemotePath(ddev.Node, ddev.Local, sdev.Node, sdev.Local)
					w.reliableSend("mpi.ca", path, rev, send, recv, commit, nil, done.Fire)
				} else {
					w.startFlowRetry("mpi.ca", path, float64(send.bytes), func() {
						commit(false, 0)
						done.Fire()
					})
				}
			})
		}, deps...)
		// The destination's default stream observes the arrival, then both
		// sides pay a device-wide synchronization.
		ddev.DefaultStream().WaitEvent(copyDone)
		copyDone.Wait(pr)
		pr.Sleep(p.CudaAwareSyncCost)
		sdev.Synchronize(pr)
		ddev.Synchronize(pr)
		send.done.Fire()
		recv.done.Fire()
	})
}

func commitCopy(dst *cudart.Buffer, dstOff int64, src *cudart.Buffer, srcOff, bytes int64) {
	if dst.Data() != nil && src.Data() != nil {
		copy(dst.Data()[dstOff:dstOff+bytes], src.Data()[srcOff:srcOff+bytes])
	}
}

// Barrier parks the process until every rank has entered the barrier
// (MPI_Barrier). The cost is a log2(n) latency tree.
func (w *World) Barrier(p *sim.Proc) {
	if w.barrierSig == nil {
		w.barrierSig = sim.NewSignal(w.M.Eng, "mpi.barrier")
	}
	w.barrierCount++
	sig := w.barrierSig
	if w.barrierCount == w.active {
		w.barrierCount = 0
		w.barrierSig = nil
		lat := w.M.Params.MPIInterLatency * sim.Time(math.Ceil(math.Log2(float64(w.active))+1))
		w.M.Eng.After(lat, sig.Fire)
		sig.Wait(p)
		return
	}
	sig.Wait(p)
}

// AllreduceMaxFloat performs an allreduce with the MAX operation over one
// float64 per rank. It is used by the harness to agree on the slowest rank's
// exchange time, the quantity the paper reports.
type allreduceState struct {
	count int
	max   float64
	sig   *sim.Signal
}

// Allreducer coordinates repeated max-allreduces across ranks.
type Allreducer struct {
	w  *World
	st *allreduceState
}

// NewAllreducer creates an allreducer over the world.
func NewAllreducer(w *World) *Allreducer { return &Allreducer{w: w} }

// MaxFloat contributes v and parks until all ranks have contributed, then
// returns the global maximum.
func (a *Allreducer) MaxFloat(p *sim.Proc, v float64) float64 {
	if a.st == nil {
		a.st = &allreduceState{sig: sim.NewSignal(a.w.M.Eng, "mpi.allreduce"), max: math.Inf(-1)}
	}
	st := a.st
	st.count++
	if v > st.max {
		st.max = v
	}
	if st.count == a.w.active {
		a.st = nil
		lat := a.w.M.Params.MPIInterLatency * sim.Time(math.Ceil(math.Log2(float64(a.w.active))+1))
		a.w.M.Eng.After(lat, st.sig.Fire)
	}
	st.sig.Wait(p)
	return st.max
}
