// Feature cost ledger: attribution of virtual time, event counts, and host
// allocations to the optional subsystem ("feature") that caused them.
//
// The ledger answers "what does each layer cost?" — the question the
// benchmark matrix (stencilbench -experiment matrix) and the ROADMAP's
// raw-speed work need answered before attacking the top costs. It is a pure
// aggregation inside the Recorder: attributing a span, event, or allocation
// to a feature never changes what Snapshot, WriteEvents, or WritePrometheus
// emit, so every committed golden (METRICS.json, faultsim transcripts,
// SERVE-smoke.json) is byte-identical with the ledger on or off.
//
// Attribution is deterministic for the same reason the rest of the recorder
// is: entries are keyed by a fixed feature list, fed only from engine event
// context, and hold only virtual-time quantities plus instrumented (not
// sampled) allocation counts.
package telemetry

import (
	"encoding/json"
	"io"
)

// Feature names one attributable subsystem. The zero value ("") means
// unattributed: spans without a feature do not feed the ledger.
type Feature string

// The seven attributable features. FeatureBaseline is the bare exchange
// machinery (setup, partition/placement, the per-iteration exchange itself);
// the others are the optional layers stacked on top. FeatureSelf accounts
// for the telemetry recorder's own retained state.
const (
	FeatureBaseline Feature = "baseline"
	FeatureReliable Feature = "reliable"
	FeatureVerify   Feature = "verify"
	FeatureOverlap  Feature = "overlap"
	FeatureRecovery Feature = "recovery"
	FeatureAdapt    Feature = "adapt"
	FeatureSelf     Feature = "telemetry-self"
)

// Features is the fixed export order of the ledger. Every Ledger() call
// returns exactly these entries in exactly this order, so downstream
// consumers (MATRIX.json, benchdrift -matrix) see a stable schema.
var Features = []Feature{
	FeatureBaseline, FeatureReliable, FeatureVerify, FeatureOverlap,
	FeatureRecovery, FeatureAdapt, FeatureSelf,
}

// LedgerEntry is one feature's accumulated cost.
//
// VirtualSeconds is the sum of feature-tagged span durations (inclusive:
// nested spans of the same feature each contribute their full duration, so
// instrumentation sites tag the finest span that covers the work, not every
// enclosing one). Events counts hook invocations and attributed event-log
// records. HostAllocs/HostAllocBytes count instrumented host-side buffer
// allocations (checkpoint copies, repair buffers, reliable-envelope
// payload copies) — instrumented at the allocation site, not sampled from
// the Go runtime, so they are bit-identical across runs and worker counts.
type LedgerEntry struct {
	Feature        Feature `json:"feature"`
	Spans          int     `json:"spans"`
	VirtualSeconds float64 `json:"virtual_seconds"`
	Events         int     `json:"events"`
	HostAllocs     int     `json:"host_allocs"`
	HostAllocBytes int64   `json:"host_alloc_bytes"`
}

// entry returns (creating on first use) the mutable ledger entry for f.
func (r *Recorder) entry(f Feature) *LedgerEntry {
	e, ok := r.ledger[f]
	if !ok {
		e = &LedgerEntry{Feature: f}
		r.ledger[f] = e
	}
	return e
}

// AttributeSeconds adds virtual seconds to a feature's ledger entry. Span
// ends call this automatically for feature-tagged spans; hooks that know a
// duration without a span (e.g. verify rounds) call it directly.
func (r *Recorder) AttributeSeconds(f Feature, s float64) {
	if f == "" {
		return
	}
	r.entry(f).VirtualSeconds += s
}

// AttributeEvent counts one feature-attributed event (a hook invocation or
// event-log record caused by the feature).
func (r *Recorder) AttributeEvent(f Feature) {
	if f == "" {
		return
	}
	r.entry(f).Events++
}

// AttributeAlloc records one instrumented host allocation of the given size
// on behalf of a feature.
func (r *Recorder) AttributeAlloc(f Feature, bytes int64) {
	if f == "" {
		return
	}
	e := r.entry(f)
	e.HostAllocs++
	e.HostAllocBytes += bytes
}

// StartSpanFeature opens a span exactly like StartSpan and additionally tags
// it with a feature: when the span ends, its duration and count are
// attributed to that feature's ledger entry. The feature is ledger-internal
// — it does not appear in the span's event-log record or in Snapshot, so
// exports stay byte-identical to untagged spans.
func (r *Recorder) StartSpanFeature(name string, parent *Span, t float64, f Feature) *Span {
	s := r.StartSpan(name, parent, t)
	s.feat = f
	return s
}

// Ledger returns the seven feature entries in Features order. Entries for
// features that never attributed anything are present with zero values, so
// consumers can rely on the full schema. The telemetry-self entry is
// computed at call time from the recorder's retained state: it counts the
// records the recorder itself holds (its host-memory cost) and estimates
// their retained bytes; its virtual seconds are zero by construction — the
// recorder is passive and can never add virtual time.
func (r *Recorder) Ledger() []LedgerEntry {
	out := make([]LedgerEntry, 0, len(Features))
	for _, f := range Features {
		if f == FeatureSelf {
			out = append(out, r.selfEntry())
			continue
		}
		if e, ok := r.ledger[f]; ok {
			out = append(out, *e)
		} else {
			out = append(out, LedgerEntry{Feature: f})
		}
	}
	return out
}

// selfEntry sizes the recorder's own retained state deterministically: the
// same run always holds the same records, so the estimate is bit-identical
// across reruns and worker counts.
func (r *Recorder) selfEntry() LedgerEntry {
	e := LedgerEntry{Feature: FeatureSelf}
	e.Events = len(r.events)
	e.Spans = len(r.spans)
	var bytes int64
	for i := range r.events {
		ev := &r.events[i]
		bytes += 48 + int64(len(ev.Kind))
		for _, f := range ev.Fields {
			bytes += 32 + int64(len(f.Key))
			if s, ok := f.Value.(string); ok {
				bytes += int64(len(s))
			}
		}
	}
	for i := range r.spans {
		bytes += 64 + int64(len(r.spans[i].Name)) + 16*int64(len(r.spans[i].Tags))
	}
	for _, tr := range r.tracks {
		bytes += int64(len(tr.Name)) + 16*int64(len(tr.Times))
	}
	for k, h := range r.hists {
		bytes += int64(len(k)) + 8*int64(len(h.buckets)+len(h.counts))
	}
	for k := range r.counters {
		bytes += int64(len(k)) + 8
	}
	for k := range r.gauges {
		bytes += int64(len(k)) + 8
	}
	e.HostAllocs = len(r.counters) + len(r.gauges) + len(r.hists) + len(r.tracks) + e.Events + e.Spans
	e.HostAllocBytes = bytes
	return e
}

// WriteLedger writes the ledger as indented JSON in Features order. The
// output is deterministic: same run, same bytes.
func WriteLedger(w io.Writer, entries []LedgerEntry) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(entries)
}

// The hook→feature mapping for the Recorder's structural probe methods,
// applied inside each method in telemetry.go:
//
//	MPIRetry, MPIRetryExhausted, MPIProtocol → reliable
//	VerifyRound                              → verify
//	LinkQuarantine                           → adapt (health gating feeds
//	                                           adaptive re-specialization)
//	FaultApplied, RecordOp, Rebalanced       → baseline (substrate)
