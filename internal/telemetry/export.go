package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
)

// SchemaVersion identifies the snapshot document layout. Bump it when the
// Snapshot shape changes incompatibly; the CI drift gate compares it exactly.
const SchemaVersion = "stencil-metrics/1"

// Snapshot is the exportable state of a Recorder: every metric sorted by
// (name, labels), per-link statistics derived from the utilization tracks,
// and per-name span totals. It contains only virtual-time quantities — no
// wall-clock values — so identical runs marshal to identical bytes.
type Snapshot struct {
	Schema     string       `json:"schema"`
	Counters   []Metric     `json:"counters"`
	Gauges     []Metric     `json:"gauges"`
	Histograms []HistMetric `json:"histograms"`
	Links      []LinkStat   `json:"links"`
	Spans      []SpanStat   `json:"spans"`
	Events     int          `json:"events"`
}

// Metric is one exported counter or gauge sample.
type Metric struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

// HistMetric is one exported histogram.
type HistMetric struct {
	Name    string            `json:"name"`
	Labels  map[string]string `json:"labels,omitempty"`
	Buckets []float64         `json:"buckets"`
	Counts  []uint64          `json:"counts"`
	Sum     float64           `json:"sum"`
	Count   uint64            `json:"count"`
}

// LinkStat summarizes one link's utilization track: BusySeconds is
// ∫ utilization dt over the run (1.0 would mean saturated for one virtual
// second), Peak the highest sampled utilization.
type LinkStat struct {
	Name        string  `json:"name"`
	BusySeconds float64 `json:"busy_seconds"`
	Peak        float64 `json:"peak_util"`
	Samples     int     `json:"samples"`
}

// SpanStat aggregates completed spans by name.
type SpanStat struct {
	Name         string  `json:"name"`
	Count        int     `json:"count"`
	TotalSeconds float64 `json:"total_seconds"`
}

func labelMap(ls []Label) map[string]string {
	if len(ls) == 0 {
		return nil
	}
	m := make(map[string]string, len(ls))
	for _, l := range ls {
		m[l.Key] = l.Value
	}
	return m
}

// Snapshot exports the recorder's current state.
func (r *Recorder) Snapshot() Snapshot {
	s := Snapshot{Schema: SchemaVersion, Events: len(r.events)}

	keys := func(m map[string]metricMeta, in func(string) bool) []string {
		var ks []string
		for k := range m {
			if in(k) {
				ks = append(ks, k)
			}
		}
		sort.Strings(ks)
		return ks
	}
	for _, k := range keys(r.metas, func(k string) bool { _, ok := r.counters[k]; return ok }) {
		meta := r.metas[k]
		s.Counters = append(s.Counters, Metric{Name: meta.name, Labels: labelMap(meta.labels), Value: r.counters[k].v})
	}
	for _, k := range keys(r.metas, func(k string) bool { _, ok := r.gauges[k]; return ok }) {
		meta := r.metas[k]
		s.Gauges = append(s.Gauges, Metric{Name: meta.name, Labels: labelMap(meta.labels), Value: r.gauges[k].v})
	}
	for _, k := range keys(r.metas, func(k string) bool { _, ok := r.hists[k]; return ok }) {
		meta := r.metas[k]
		h := r.hists[k]
		s.Histograms = append(s.Histograms, HistMetric{
			Name: meta.name, Labels: labelMap(meta.labels),
			Buckets: h.buckets, Counts: h.counts, Sum: h.sum, Count: h.n,
		})
	}
	for _, tr := range r.Tracks() {
		if !tr.isLink {
			continue
		}
		s.Links = append(s.Links, LinkStat{
			Name: tr.Name, BusySeconds: tr.integral, Peak: tr.peak, Samples: tr.samples,
		})
	}
	agg := make(map[string]*SpanStat)
	var names []string
	for _, sp := range r.spans {
		st, ok := agg[sp.Name]
		if !ok {
			st = &SpanStat{Name: sp.Name}
			agg[sp.Name] = st
			names = append(names, sp.Name)
		}
		st.Count++
		st.TotalSeconds += sp.End - sp.Start
	}
	sort.Strings(names)
	for _, n := range names {
		s.Spans = append(s.Spans, *agg[n])
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON (the METRICS.json format).
func (r *Recorder) WriteJSON(w io.Writer) error {
	return writeJSON(w, r.Snapshot())
}

func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// WriteEvents writes the event log as NDJSON: one JSON object per line, keys
// in a fixed order ("t", "kind", then the record's fields in append order).
func (r *Recorder) WriteEvents(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i := range r.events {
		if err := writeEvent(bw, &r.events[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// writeEvent hand-encodes one record so field order is stable (encoding/json
// on a map would sort keys; on a struct it cannot carry per-kind fields).
func writeEvent(w *bufio.Writer, e *Event) error {
	w.WriteString(`{"t":`)
	if err := writeJSONValue(w, e.T); err != nil {
		return err
	}
	w.WriteString(`,"kind":`)
	if err := writeJSONValue(w, e.Kind); err != nil {
		return err
	}
	for _, f := range e.Fields {
		w.WriteByte(',')
		if err := writeJSONValue(w, f.Key); err != nil {
			return err
		}
		w.WriteByte(':')
		if err := writeJSONValue(w, f.Value); err != nil {
			return err
		}
	}
	w.WriteString("}\n")
	return nil
}

func writeJSONValue(w *bufio.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("telemetry: event value %v: %w", v, err)
	}
	_, err = w.Write(b)
	return err
}

// WritePrometheus writes every metric in the Prometheus text exposition
// format. Series are grouped into metric families: each family name gets
// exactly one # HELP and one # TYPE header regardless of how many labeled
// series share it (repeating TYPE per series is invalid exposition format).
// Histograms expand to the conventional _bucket/_sum/_count series; link
// tracks export as link_busy_seconds and link_peak_util.
func (r *Recorder) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	s := r.Snapshot()
	writeScalarFamilies(bw, s.Counters, "counter")
	writeScalarFamilies(bw, s.Gauges, "gauge")

	histNames, histsByName := groupHistograms(s.Histograms)
	for _, name := range histNames {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s histogram\n", name, promHelp(name), name)
		for _, h := range histsByName[name] {
			cum := uint64(0)
			for i, ub := range h.Buckets {
				cum += h.Counts[i]
				fmt.Fprintf(bw, "%s_bucket%s %d\n", h.Name, promLabels(h.Labels, "le", promFloat(ub)), cum)
			}
			cum += h.Counts[len(h.Buckets)]
			fmt.Fprintf(bw, "%s_bucket%s %d\n", h.Name, promLabels(h.Labels, "le", "+Inf"), cum)
			fmt.Fprintf(bw, "%s_sum%s %s\n", h.Name, promLabels(h.Labels, "", ""), promFloat(h.Sum))
			fmt.Fprintf(bw, "%s_count%s %d\n", h.Name, promLabels(h.Labels, "", ""), h.Count)
		}
	}
	if len(s.Links) > 0 {
		fmt.Fprintf(bw, "# HELP link_busy_seconds %s\n# TYPE link_busy_seconds counter\n", promHelp("link_busy_seconds"))
		for _, l := range s.Links {
			fmt.Fprintf(bw, "link_busy_seconds{link=%q} %s\n", l.Name, promFloat(l.BusySeconds))
		}
		fmt.Fprintf(bw, "# HELP link_peak_util %s\n# TYPE link_peak_util gauge\n", promHelp("link_peak_util"))
		for _, l := range s.Links {
			fmt.Fprintf(bw, "link_peak_util{link=%q} %s\n", l.Name, promFloat(l.Peak))
		}
	}
	return bw.Flush()
}

// writeScalarFamilies groups counter or gauge series by family name and
// emits one HELP/TYPE header per family. Snapshot orders series by
// canonical key, which keeps label order stable within a family but can
// interleave families when one name prefixes another — so grouping is by
// explicit name, families emitted in sorted-name order.
func writeScalarFamilies(bw *bufio.Writer, metrics []Metric, typ string) {
	byName := make(map[string][]Metric)
	var names []string
	for _, m := range metrics {
		if _, ok := byName[m.Name]; !ok {
			names = append(names, m.Name)
		}
		byName[m.Name] = append(byName[m.Name], m)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s %s\n", name, promHelp(name), name, typ)
		for _, m := range byName[name] {
			fmt.Fprintf(bw, "%s%s %s\n", m.Name, promLabels(m.Labels, "", ""), promFloat(m.Value))
		}
	}
}

func groupHistograms(hists []HistMetric) ([]string, map[string][]HistMetric) {
	byName := make(map[string][]HistMetric)
	var names []string
	for _, h := range hists {
		if _, ok := byName[h.Name]; !ok {
			names = append(names, h.Name)
		}
		byName[h.Name] = append(byName[h.Name], h)
	}
	sort.Strings(names)
	return names, byName
}

// promHelpText maps known metric families to their HELP line. Families not
// listed fall back to a suffix-derived generic description in promHelp.
var promHelpText = map[string]string{
	"flownet_rebalances_total":   "waterfill rebalance passes over flow-network components",
	"flownet_rebalance_links":    "links touched per waterfill rebalance pass",
	"flownet_rebalance_flows":    "flows touched per waterfill rebalance pass",
	"cudart_ops_total":           "completed CUDA ops by kind",
	"cudart_op_bytes_total":      "bytes moved by CUDA ops by kind",
	"cudart_op_seconds":          "virtual duration of CUDA ops by kind",
	"mpi_retries_total":          "timed-out-and-aborted send attempts",
	"mpi_retry_exhausted_total":  "sends whose retry budget ran out",
	"mpi_protocol_total":         "reliable-delivery protocol actions by kind",
	"link_quarantine_total":      "link health-gate transitions by action",
	"verify_reexchanges_total":   "quadrants re-exchanged by end-to-end halo verification",
	"faults_total":               "applied fault actions by kind",
	"exchange_iterations_total":  "completed halo-exchange iterations",
	"exchange_iteration_seconds": "virtual duration of one halo-exchange iteration",
	"exchange_plans":             "cached exchange plans by method",
	"link_busy_seconds":          "integral of link utilization over virtual time",
	"link_peak_util":             "highest sampled link utilization",
}

// promHelp returns the HELP text for a metric family, falling back to a
// generic description derived from the conventional name suffix.
func promHelp(name string) string {
	if h, ok := promHelpText[name]; ok {
		return h
	}
	switch {
	case strings.HasSuffix(name, "_total"):
		return "monotonic event counter"
	case strings.HasSuffix(name, "_seconds"):
		return "duration in seconds"
	case strings.HasSuffix(name, "_bytes"):
		return "size in bytes"
	}
	return "simulation metric"
}

// promFloat renders a float the way Go's JSON encoder does, so text and JSON
// exports agree digit-for-digit.
func promFloat(v float64) string {
	b, _ := json.Marshal(v)
	return string(b)
}

// promLabels renders a sorted label set, optionally with one extra pair
// appended (the histogram "le" bound).
func promLabels(labels map[string]string, extraK, extraV string) string {
	if len(labels) == 0 && extraK == "" {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	if extraK != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraK, extraV)
	}
	b.WriteByte('}')
	return b.String()
}

// Report is the top-level METRICS.json document: one snapshot per run of a
// deterministic configuration ladder.
type Report struct {
	Schema string      `json:"schema"`
	Tool   string      `json:"tool"`
	Iters  int         `json:"iters,omitempty"`
	Runs   []ReportRun `json:"runs"`
}

// ReportRun is one configuration's snapshot.
type ReportRun struct {
	Config   string   `json:"config"`
	Caps     string   `json:"caps,omitempty"`
	Snapshot Snapshot `json:"snapshot"`
}

// WriteReport writes a report as indented JSON.
func WriteReport(w io.Writer, rep *Report) error { return writeJSON(w, rep) }

// ReadReport parses a report file.
func ReadReport(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(b, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// DiffReports compares a regenerated report against the committed golden:
// the schema — document schema string, run list, metric names and label
// sets, histogram bucket layouts, link and span name sets — must match
// exactly; values must agree within the relative tolerance. It returns a
// human-readable list of violations (empty means the gate passes).
func DiffReports(ref, got *Report, tol float64) []string {
	var issues []string
	add := func(format string, args ...any) { issues = append(issues, fmt.Sprintf(format, args...)) }

	if ref.Schema != got.Schema {
		add("schema mismatch: golden %q vs regenerated %q", ref.Schema, got.Schema)
		return issues
	}
	if len(ref.Runs) != len(got.Runs) {
		add("run count mismatch: golden %d vs regenerated %d", len(ref.Runs), len(got.Runs))
		return issues
	}
	for i := range ref.Runs {
		rr, gr := &ref.Runs[i], &got.Runs[i]
		ctx := fmt.Sprintf("run %s %s", rr.Config, rr.Caps)
		if rr.Config != gr.Config || rr.Caps != gr.Caps {
			add("%s: regenerated as %s %s", ctx, gr.Config, gr.Caps)
			continue
		}
		diffSnapshot(ctx, &rr.Snapshot, &gr.Snapshot, tol, add)
	}
	return issues
}

func diffSnapshot(ctx string, ref, got *Snapshot, tol float64, add func(string, ...any)) {
	if ref.Schema != got.Schema {
		add("%s: snapshot schema %q vs %q", ctx, ref.Schema, got.Schema)
		return
	}
	metricKey := func(m Metric) string { return m.Name + promLabels(m.Labels, "", "") }
	diffMetrics := func(kind string, r, g []Metric) {
		rm, gm := map[string]float64{}, map[string]float64{}
		for _, m := range r {
			rm[metricKey(m)] = m.Value
		}
		for _, m := range g {
			gm[metricKey(m)] = m.Value
		}
		for _, m := range r {
			k := metricKey(m)
			gv, ok := gm[k]
			if !ok {
				add("%s: %s %s missing from regenerated run", ctx, kind, k)
				continue
			}
			if !within(m.Value, gv, tol) {
				add("%s: %s %s: golden %g vs regenerated %g (tol %g)", ctx, kind, k, m.Value, gv, tol)
			}
		}
		for _, m := range g {
			if _, ok := rm[metricKey(m)]; !ok {
				add("%s: %s %s not in golden (schema change: regenerate the golden)", ctx, kind, metricKey(m))
			}
		}
	}
	diffMetrics("counter", ref.Counters, got.Counters)
	diffMetrics("gauge", ref.Gauges, got.Gauges)

	rh := map[string]HistMetric{}
	for _, h := range ref.Histograms {
		rh[h.Name+promLabels(h.Labels, "", "")] = h
	}
	gh := map[string]HistMetric{}
	for _, h := range got.Histograms {
		gh[h.Name+promLabels(h.Labels, "", "")] = h
	}
	for k, h := range rh {
		g, ok := gh[k]
		if !ok {
			add("%s: histogram %s missing from regenerated run", ctx, k)
			continue
		}
		if !equalFloats(h.Buckets, g.Buckets) {
			add("%s: histogram %s bucket layout changed", ctx, k)
			continue
		}
		if !within(float64(h.Count), float64(g.Count), tol) {
			add("%s: histogram %s count: golden %d vs regenerated %d", ctx, k, h.Count, g.Count)
		}
		if !within(h.Sum, g.Sum, tol) {
			add("%s: histogram %s sum: golden %g vs regenerated %g", ctx, k, h.Sum, g.Sum)
		}
	}
	for k := range gh {
		if _, ok := rh[k]; !ok {
			add("%s: histogram %s not in golden (schema change: regenerate the golden)", ctx, k)
		}
	}

	rl := map[string]LinkStat{}
	for _, l := range ref.Links {
		rl[l.Name] = l
	}
	gl := map[string]LinkStat{}
	for _, l := range got.Links {
		gl[l.Name] = l
	}
	for k, l := range rl {
		g, ok := gl[k]
		if !ok {
			add("%s: link %s missing from regenerated run", ctx, k)
			continue
		}
		if !within(l.BusySeconds, g.BusySeconds, tol) {
			add("%s: link %s busy_seconds: golden %g vs regenerated %g", ctx, k, l.BusySeconds, g.BusySeconds)
		}
	}
	for k := range gl {
		if _, ok := rl[k]; !ok {
			add("%s: link %s not in golden (schema change: regenerate the golden)", ctx, k)
		}
	}

	rs := map[string]SpanStat{}
	for _, s := range ref.Spans {
		rs[s.Name] = s
	}
	gs := map[string]SpanStat{}
	for _, s := range got.Spans {
		gs[s.Name] = s
	}
	for k, s := range rs {
		g, ok := gs[k]
		if !ok {
			add("%s: span %s missing from regenerated run", ctx, k)
			continue
		}
		if s.Count != g.Count {
			add("%s: span %s count: golden %d vs regenerated %d", ctx, k, s.Count, g.Count)
		}
		if !within(s.TotalSeconds, g.TotalSeconds, tol) {
			add("%s: span %s total_seconds: golden %g vs regenerated %g", ctx, k, s.TotalSeconds, g.TotalSeconds)
		}
	}
	for k := range gs {
		if _, ok := rs[k]; !ok {
			add("%s: span %s not in golden (schema change: regenerate the golden)", ctx, k)
		}
	}
}

// within reports whether two values agree within the relative tolerance.
func within(a, b, tol float64) bool {
	if a == b {
		return true
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= tol*m
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
