// Package telemetry is the unified observability layer for the simulated
// stack: a virtual-time metrics registry (counters, gauges, histograms with
// fixed bucket layouts), hierarchical spans, per-link utilization tracks,
// and a structured event log keyed by virtual time.
//
// Everything a Recorder captures is a pure function of the simulation it
// observes: no wall-clock timestamps, no map-iteration order, no allocation
// addresses leak into any export. Two identical runs therefore produce
// byte-identical NDJSON event logs, JSON snapshots, and Prometheus dumps —
// which is what lets CI gate the metric schema and steady-state values
// against a committed golden (results/METRICS.json).
//
// A Recorder is strictly passive: its hooks never schedule events, park
// processes, or otherwise touch the engine, so enabling telemetry cannot
// change simulated virtual times. All hooks run in the engine's event
// context (never on payload worker goroutines), so no locking is needed.
package telemetry

import (
	"sort"
	"strings"
)

// Label is one metric dimension (a Prometheus-style key=value pair).
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Field is one ordered key/value pair of an event-log record. Values must be
// JSON-encodable scalars (string, bool, ints, float64).
type Field struct {
	Key   string
	Value any
}

// F is shorthand for constructing a Field.
func F(key string, value any) Field { return Field{Key: key, Value: value} }

// Fixed bucket layouts. Histograms share these package-level layouts so the
// exported schema never depends on runtime values.
var (
	// SecondsBuckets spans 1 µs .. 10 s in a 1-2.5-5 decade pattern.
	SecondsBuckets = []float64{
		1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
		1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 1e-1, 2.5e-1, 5e-1, 1, 2.5, 5, 10,
	}
	// CountBuckets is powers of four from 1 to 64Ki (component sizes,
	// flow counts).
	CountBuckets = []float64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536}
	// BytesBuckets is powers of four from 1 KiB to 1 GiB (message sizes).
	BytesBuckets = []float64{1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20, 1 << 22, 1 << 24, 1 << 26, 1 << 28, 1 << 30}
)

// Counter is a monotonically increasing value.
type Counter struct{ v float64 }

// Add increases the counter.
func (c *Counter) Add(d float64) { c.v += d }

// Inc increases the counter by one.
func (c *Counter) Inc() { c.v++ }

// Value returns the current value.
func (c *Counter) Value() float64 { return c.v }

// Gauge is a value that can move both ways.
type Gauge struct{ v float64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.v = v }

// Add shifts the gauge value.
func (g *Gauge) Add(d float64) { g.v += d }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// Histogram is a fixed-layout cumulative histogram: Buckets holds the upper
// bounds (le semantics); counts has one extra slot for the +Inf overflow.
type Histogram struct {
	buckets []float64
	counts  []uint64
	sum     float64
	n       uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.buckets, v) // first bucket with bound >= v
	h.counts[i]++
	h.sum += v
	h.n++
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.n }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Event is one structured event-log record: a virtual timestamp, a kind, and
// ordered fields. Records are written as NDJSON in append order (which is
// engine event order, hence deterministic).
type Event struct {
	T      float64
	Kind   string
	Fields []Field
}

// Span is an in-flight hierarchical phase. Spans carry explicit parents
// (ranks interleave; there is no meaningful global stack) and explicit
// virtual times, so they are plain data: starting or ending one never
// touches the engine.
type Span struct {
	r     *Recorder
	id    int
	par   int
	name  string
	start float64
	ended bool
	feat  Feature // "" = unattributed; set via StartSpanFeature
}

// SpanRecord is one completed span.
type SpanRecord struct {
	ID     int
	Parent int // -1 for roots
	Name   string
	Start  float64
	End    float64
	Tags   []Label
}

// Track is one counter-track time series (a step function over virtual
// time): per-link utilization, active-flow counts. Consecutive duplicate
// values are coalesced; the time-weighted integral is maintained so
// ∫ util dt ("link busy seconds") is exact regardless of coalescing.
type Track struct {
	Name   string
	Times  []float64
	Values []float64

	integral float64
	peak     float64
	lastT    float64
	lastV    float64
	started  bool
	samples  int
	isLink   bool
}

// Integral returns the time-weighted integral of the track up to the last
// sample.
func (tr *Track) Integral() float64 { return tr.integral }

// Peak returns the largest sampled value.
func (tr *Track) Peak() float64 { return tr.peak }

// IsLink reports whether the track was fed by LinkSample (per-link
// utilization) rather than a generic Sample series.
func (tr *Track) IsLink() bool { return tr.isLink }

func (tr *Track) sample(t, v float64) {
	tr.samples++
	if tr.started {
		if t < tr.lastT {
			t = tr.lastT
		}
		tr.integral += tr.lastV * (t - tr.lastT)
	}
	if v > tr.peak {
		tr.peak = v
	}
	switch n := len(tr.Times); {
	case n == 0:
		tr.Times = append(tr.Times, t)
		tr.Values = append(tr.Values, v)
	case tr.Times[n-1] == t:
		tr.Values[n-1] = v // same instant: keep the final value
	case tr.Values[n-1] != v:
		tr.Times = append(tr.Times, t)
		tr.Values = append(tr.Values, v)
	}
	tr.lastT, tr.lastV, tr.started = t, v, true
}

// Recorder is the telemetry sink threaded through the stack via
// exchange.Options.Telemetry. The zero value is not usable; call New.
type Recorder struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	metas    map[string]metricMeta

	tracks map[string]*Track

	events []Event
	spans  []SpanRecord
	nextID int

	// ledger accumulates per-feature cost attribution (ledger.go). It is
	// fed by feature-tagged spans and the Attribute* methods and never
	// leaks into Snapshot or the event log.
	ledger map[Feature]*LedgerEntry

	// LinkEvents controls whether every per-link utilization sample is also
	// appended to the event log (kind "link"). On by default; the report
	// tool's top-N hot links read these. Metrics and tracks are unaffected.
	LinkEvents bool
}

// metricMeta remembers a metric's identity for export.
type metricMeta struct {
	name   string
	labels []Label // sorted by key
}

// New creates an empty recorder.
func New() *Recorder {
	return &Recorder{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		hists:      make(map[string]*Histogram),
		metas:      make(map[string]metricMeta),
		tracks:     make(map[string]*Track),
		ledger:     make(map[Feature]*LedgerEntry),
		LinkEvents: true,
	}
}

// key canonicalizes (name, labels) and registers the metadata.
func (r *Recorder) key(name string, labels []Label) string {
	if len(labels) == 0 {
		if _, ok := r.metas[name]; !ok {
			r.metas[name] = metricMeta{name: name}
		}
		return name
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	for _, l := range ls {
		b.WriteByte(0xff)
		b.WriteString(l.Key)
		b.WriteByte(0xfe)
		b.WriteString(l.Value)
	}
	k := b.String()
	if _, ok := r.metas[k]; !ok {
		r.metas[k] = metricMeta{name: name, labels: ls}
	}
	return k
}

// Counter returns (creating on first use) the counter with the given name
// and labels.
func (r *Recorder) Counter(name string, labels ...Label) *Counter {
	k := r.key(name, labels)
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns (creating on first use) the gauge with the given name and
// labels.
func (r *Recorder) Gauge(name string, labels ...Label) *Gauge {
	k := r.key(name, labels)
	g, ok := r.gauges[k]
	if !ok {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram returns (creating on first use) the histogram with the given
// name, bucket layout, and labels. The layout must be one of the package's
// fixed layouts (or at least identical across calls for the same name).
func (r *Recorder) Histogram(name string, buckets []float64, labels ...Label) *Histogram {
	k := r.key(name, labels)
	h, ok := r.hists[k]
	if !ok {
		h = &Histogram{buckets: buckets, counts: make([]uint64, len(buckets)+1)}
		r.hists[k] = h
	}
	return h
}

// Event appends one structured record to the event log.
func (r *Recorder) Event(t float64, kind string, fields ...Field) {
	r.events = append(r.events, Event{T: t, Kind: kind, Fields: fields})
}

// Events returns the event log in append (engine) order.
func (r *Recorder) Events() []Event { return r.events }

// StartSpan opens a span at virtual time t under parent (nil for a root).
func (r *Recorder) StartSpan(name string, parent *Span, t float64) *Span {
	s := &Span{r: r, id: r.nextID, par: -1, name: name, start: t}
	r.nextID++
	if parent != nil {
		s.par = parent.id
	}
	return s
}

// End closes the span at virtual time t, recording it and appending a "span"
// event. Ending twice is a no-op.
func (s *Span) End(t float64, tags ...Label) {
	if s.ended {
		return
	}
	s.ended = true
	if s.feat != "" {
		e := s.r.entry(s.feat)
		e.Spans++
		e.VirtualSeconds += t - s.start
	}
	rec := SpanRecord{ID: s.id, Parent: s.par, Name: s.name, Start: s.start, End: t, Tags: tags}
	s.r.spans = append(s.r.spans, rec)
	fields := []Field{
		F("name", s.name), F("id", s.id), F("parent", s.par),
		F("start", s.start), F("end", t), F("dur", t-s.start),
	}
	for _, tag := range tags {
		fields = append(fields, F(tag.Key, tag.Value))
	}
	s.r.Event(s.start, "span", fields...)
}

// Spans returns the completed spans in end order.
func (r *Recorder) Spans() []SpanRecord { return r.spans }

// track returns (creating on first use) the named counter track.
func (r *Recorder) track(name string) *Track {
	tr, ok := r.tracks[name]
	if !ok {
		tr = &Track{Name: name}
		r.tracks[name] = tr
	}
	return tr
}

// Sample appends one (t, v) point to the named counter track.
func (r *Recorder) Sample(name string, t, v float64) { r.track(name).sample(t, v) }

// Tracks returns every counter track, sorted by name.
func (r *Recorder) Tracks() []*Track {
	names := make([]string, 0, len(r.tracks))
	for n := range r.tracks {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Track, len(names))
	for i, n := range names {
		out[i] = r.tracks[n]
	}
	return out
}

// ---- Probe hooks (structural implementations of flownet.Probe etc.) ----

// LinkSample records one link's utilization and active-flow count at a
// waterfill rebalance. Implements the flownet.Probe interface.
func (r *Recorder) LinkSample(t float64, link string, util float64, flows int) {
	tr := r.track(link)
	tr.isLink = true
	tr.sample(t, util)
	if r.LinkEvents {
		r.Event(t, "link", F("link", link), F("util", util), F("flows", flows))
	}
}

// Rebalanced records one waterfill pass over a component of the flow
// network. Implements the flownet.Probe interface.
func (r *Recorder) Rebalanced(t float64, links, flows, active int) {
	r.AttributeEvent(FeatureBaseline)
	r.Counter("flownet_rebalances_total").Inc()
	r.Histogram("flownet_rebalance_links", CountBuckets).Observe(float64(links))
	r.Histogram("flownet_rebalance_flows", CountBuckets).Observe(float64(flows))
	r.Sample("flownet.active", t, float64(active))
}

// RecordOp ingests one completed CUDA op record.
func (r *Recorder) RecordOp(kind, name string, device int, stream string, start, end float64, bytes int64) {
	r.AttributeEvent(FeatureBaseline)
	kl := L("kind", kind)
	r.Counter("cudart_ops_total", kl).Inc()
	r.Counter("cudart_op_bytes_total", kl).Add(float64(bytes))
	r.Histogram("cudart_op_seconds", SecondsBuckets, kl).Observe(end - start)
	r.Event(end, "op",
		F("name", name), F("op", kind), F("device", device), F("stream", stream),
		F("start", start), F("end", end), F("bytes", bytes))
}

// MPIRetry records one timed-out-and-aborted send attempt.
func (r *Recorder) MPIRetry(t float64, name string, attempt int) {
	r.AttributeEvent(FeatureReliable)
	r.Counter("mpi_retries_total").Inc()
	r.Event(t, "retry", F("name", name), F("attempt", attempt))
}

// MPIRetryExhausted records a send whose retry budget ran out: the final
// attempt runs without a deadline (it is never aborted), so the transfer can
// take arbitrarily long on a crawling link. Emitted when that final attempt
// starts.
func (r *Recorder) MPIRetryExhausted(t float64, name string, attempts int) {
	r.AttributeEvent(FeatureReliable)
	r.Counter("mpi_retry_exhausted_total").Inc()
	r.Event(t, "retry_exhausted", F("name", name), F("attempts", attempts))
}

// MPIProtocol records one reliable-delivery protocol action (drop, corrupt,
// dup, dedup, retransmit, nack, ackdrop, exhausted). link may be empty for
// end-to-end actions not attributable to a single link.
func (r *Recorder) MPIProtocol(t float64, kind, link string, src, dst int, seq uint64, attempt int) {
	r.AttributeEvent(FeatureReliable)
	r.Counter("mpi_protocol_total", L("kind", kind)).Inc()
	r.Event(t, "proto",
		F("proto", kind), F("link", link), F("src", src), F("dst", dst),
		F("seq", seq), F("attempt", attempt))
}

// LinkQuarantine records a health-gate transition for one link: action is
// "enter" or "exit", score the EWMA badness at the transition.
func (r *Recorder) LinkQuarantine(t float64, link, action string, score float64) {
	r.AttributeEvent(FeatureAdapt)
	r.Counter("link_quarantine_total", L("action", action)).Inc()
	r.Event(t, "quarantine", F("link", link), F("action", action), F("score", score))
}

// VerifyRound records one end-to-end halo-verification round that found bad
// quadrants and re-exchanged them.
func (r *Recorder) VerifyRound(t float64, iter, round, bad int, forced bool) {
	r.AttributeEvent(FeatureVerify)
	r.Counter("verify_reexchanges_total").Add(float64(bad))
	r.Event(t, "verify", F("iter", iter), F("round", round), F("bad", bad), F("forced", forced))
}

// FaultApplied records one applied fault action.
func (r *Recorder) FaultApplied(t float64, kind, desc string) {
	r.AttributeEvent(FeatureBaseline)
	r.Counter("faults_total", L("kind", kind)).Inc()
	r.Event(t, "fault", F("fault", kind), F("desc", desc))
}
