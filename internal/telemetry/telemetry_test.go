package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestCounterGaugeRegistry(t *testing.T) {
	r := New()
	r.Counter("ops_total", L("kind", "kernel")).Inc()
	r.Counter("ops_total", L("kind", "kernel")).Add(2)
	r.Counter("ops_total", L("kind", "memcpy")).Inc()
	r.Gauge("plans", L("method", "STAGED")).Set(5)
	r.Gauge("plans", L("method", "STAGED")).Add(-2)

	if v := r.Counter("ops_total", L("kind", "kernel")).Value(); v != 3 {
		t.Fatalf("counter = %g, want 3", v)
	}
	if v := r.Gauge("plans", L("method", "STAGED")).Value(); v != 3 {
		t.Fatalf("gauge = %g, want 3", v)
	}
	s := r.Snapshot()
	if len(s.Counters) != 2 || len(s.Gauges) != 1 {
		t.Fatalf("snapshot has %d counters, %d gauges", len(s.Counters), len(s.Gauges))
	}
	// Export order is sorted by (name, labels) regardless of creation order.
	if s.Counters[0].Labels["kind"] != "kernel" || s.Counters[1].Labels["kind"] != "memcpy" {
		t.Fatalf("counters not sorted: %+v", s.Counters)
	}
}

func TestLabelOrderCanonical(t *testing.T) {
	r := New()
	r.Counter("m", L("a", "1"), L("b", "2")).Inc()
	r.Counter("m", L("b", "2"), L("a", "1")).Inc()
	if got := r.Counter("m", L("a", "1"), L("b", "2")).Value(); got != 2 {
		t.Fatalf("label permutations did not canonicalize: %g", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("lat", SecondsBuckets)
	h.Observe(1e-6)  // exactly the first bound -> bucket 0 (le semantics)
	h.Observe(3e-6)  // -> 5e-6 bucket
	h.Observe(100.0) // overflow
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	s := r.Snapshot()
	hm := s.Histograms[0]
	if hm.Counts[0] != 1 {
		t.Fatalf("first bucket = %d, want 1", hm.Counts[0])
	}
	if hm.Counts[2] != 1 {
		t.Fatalf("5e-6 bucket = %d, want 1", hm.Counts[2])
	}
	if hm.Counts[len(hm.Counts)-1] != 1 {
		t.Fatalf("overflow bucket = %d, want 1", hm.Counts[len(hm.Counts)-1])
	}
}

func TestTrackCoalescingAndIntegral(t *testing.T) {
	r := New()
	r.Sample("l", 0, 0.5)
	r.Sample("l", 1, 0.5) // duplicate value: coalesced, integral still accrues
	r.Sample("l", 2, 1.0)
	r.Sample("l", 4, 0.0)
	tr := r.Tracks()[0]
	if len(tr.Times) != 3 {
		t.Fatalf("expected 3 coalesced points, got %d (%v)", len(tr.Times), tr.Times)
	}
	// ∫ = 0.5*2 + 1.0*2 = 3.0
	if tr.Integral() != 3.0 {
		t.Fatalf("integral = %g, want 3", tr.Integral())
	}
	if tr.Peak() != 1.0 {
		t.Fatalf("peak = %g", tr.Peak())
	}
}

func TestTrackSameInstantKeepsFinalValue(t *testing.T) {
	r := New()
	r.Sample("l", 1, 0.25)
	r.Sample("l", 1, 0.75)
	tr := r.Tracks()[0]
	if len(tr.Times) != 1 || tr.Values[0] != 0.75 {
		t.Fatalf("same-instant samples: %v %v", tr.Times, tr.Values)
	}
}

func TestSpansHierarchy(t *testing.T) {
	r := New()
	root := r.StartSpan("setup", nil, 0)
	child := r.StartSpan("setup.partition", root, 0)
	child.End(0)
	root.End(1, L("plans", "42"))
	root.End(2) // double End is a no-op

	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("%d spans", len(spans))
	}
	if spans[0].Parent != root.id || spans[1].Parent != -1 {
		t.Fatalf("parents: %+v", spans)
	}
	s := r.Snapshot()
	if len(s.Spans) != 2 || s.Spans[0].Name != "setup" || s.Spans[0].TotalSeconds != 1 {
		t.Fatalf("span stats: %+v", s.Spans)
	}
}

func TestEventLogNDJSON(t *testing.T) {
	r := New()
	r.Event(0.5, "fault", F("fault", "link-fail"), F("desc", `a "quoted" name`))
	r.Event(1.25, "retry", F("attempt", 2))
	var buf bytes.Buffer
	if err := r.WriteEvents(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines: %q", len(lines), buf.String())
	}
	if want := `{"t":0.5,"kind":"fault","fault":"link-fail","desc":"a \"quoted\" name"}`; lines[0] != want {
		t.Fatalf("line 0:\n got %s\nwant %s", lines[0], want)
	}
	// Every line must be valid JSON.
	for _, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("invalid JSON line %q: %v", ln, err)
		}
	}
}

func TestDeterministicExports(t *testing.T) {
	build := func() *Recorder {
		r := New()
		r.LinkSample(0.1, "n0.nic.out", 0.8, 3)
		r.LinkSample(0.2, "n0.nvlink.0-1", 0.4, 1)
		r.Rebalanced(0.2, 2, 4, 4)
		r.RecordOp("kernel", "pack.p1", 0, "d0.p1.send", 0.1, 0.2, 4096)
		r.MPIRetry(0.3, "mpi.wire", 1)
		r.FaultApplied(0.4, "link-fail", "fail n0.nic")
		sp := r.StartSpan("run", nil, 0)
		sp.End(0.5)
		return r
	}
	var a, b bytes.Buffer
	if err := build().WriteEvents(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteEvents(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("NDJSON not byte-identical across identical recorders")
	}
	a.Reset()
	b.Reset()
	if err := build().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("snapshot JSON not byte-identical across identical recorders")
	}
	a.Reset()
	b.Reset()
	if err := build().WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("Prometheus text not byte-identical across identical recorders")
	}
}

func TestPrometheusFormat(t *testing.T) {
	r := New()
	r.Counter("ops_total", L("kind", "kernel")).Add(7)
	r.Histogram("lat", CountBuckets).Observe(3)
	r.LinkSample(0, "n0.nic.out", 1.0, 2)
	r.LinkSample(2, "n0.nic.out", 0.0, 0)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`ops_total{kind="kernel"} 7`,
		`lat_bucket{le="4"} 1`,
		`lat_count 1`,
		`link_busy_seconds{link="n0.nic.out"} 2`,
		`link_peak_util{link="n0.nic.out"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

// TestPrometheusFamilyGrouping pins the exposition-format contract: one
// HELP and one TYPE header per metric family no matter how many labeled
// series share the name, even when one family name prefixes another (the
// canonical-key sort interleaves such families).
func TestPrometheusFamilyGrouping(t *testing.T) {
	r := New()
	r.Counter("mpi_protocol_total", L("kind", "drop")).Inc()
	r.Counter("mpi_protocol_total", L("kind", "retransmit")).Inc()
	r.Counter("mpi_protocol").Inc() // prefix of the family above
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if n := strings.Count(out, "# TYPE mpi_protocol_total counter\n"); n != 1 {
		t.Fatalf("want exactly 1 TYPE header for mpi_protocol_total, got %d:\n%s", n, out)
	}
	if !strings.Contains(out, "# HELP mpi_protocol_total ") {
		t.Fatalf("missing HELP line for mpi_protocol_total:\n%s", out)
	}
	// Series of one family must be contiguous under their header.
	header := "# TYPE mpi_protocol_total counter\n"
	rest := out[strings.Index(out, header)+len(header):]
	block := rest
	if end := strings.Index(rest, "# "); end >= 0 {
		block = rest[:end]
	}
	for _, want := range []string{`mpi_protocol_total{kind="drop"} 1`, `mpi_protocol_total{kind="retransmit"} 1`} {
		if !strings.Contains(block, want) {
			t.Fatalf("series %q not under its family header:\n%s", want, out)
		}
	}
}

func TestDiffReports(t *testing.T) {
	mk := func(v float64) *Report {
		r := New()
		r.Counter("c").Add(v)
		return &Report{Schema: SchemaVersion, Tool: "t", Runs: []ReportRun{{Config: "cfg", Snapshot: r.Snapshot()}}}
	}
	if issues := DiffReports(mk(100), mk(100), 0); len(issues) != 0 {
		t.Fatalf("identical reports diff: %v", issues)
	}
	if issues := DiffReports(mk(100), mk(105), 0.10); len(issues) != 0 {
		t.Fatalf("5%% drift rejected at 10%% tolerance: %v", issues)
	}
	if issues := DiffReports(mk(100), mk(150), 0.10); len(issues) == 0 {
		t.Fatal("50% drift passed a 10% tolerance")
	}
	// Schema violations are errors regardless of tolerance.
	extra := mk(100)
	extra.Runs[0].Snapshot.Counters = append(extra.Runs[0].Snapshot.Counters, Metric{Name: "new_metric", Value: 1})
	if issues := DiffReports(mk(100), extra, 1000); len(issues) == 0 {
		t.Fatal("new metric not flagged as schema change")
	}
}
