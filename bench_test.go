// Benchmarks regenerating the paper's tables and figures. Each benchmark
// builds the corresponding configuration and runs b.N simulated exchanges,
// reporting the virtual exchange time (the paper's metric) as
// "virt-ms/exchange" alongside Go's wall-clock numbers.
//
// Scaling benchmarks default to modest node counts so `go test -bench=.`
// finishes quickly; cmd/stencilbench reproduces the full 256-node series.
package stencil

import (
	"fmt"
	"testing"

	"github.com/nodeaware/stencil/internal/cudart"
	"github.com/nodeaware/stencil/internal/exchange"
	"github.com/nodeaware/stencil/internal/figures"
	"github.com/nodeaware/stencil/internal/machine"
	"github.com/nodeaware/stencil/internal/nvml"
	"github.com/nodeaware/stencil/internal/part"
	"github.com/nodeaware/stencil/internal/sim"
)

// benchExchange builds the configuration once, then measures b.N exchanges,
// reporting virtual time per exchange.
func benchExchange(b *testing.B, opts exchange.Options) {
	b.Helper()
	e, err := exchange.New(opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	st := e.Run(b.N)
	b.StopTimer()
	b.ReportMetric(st.Min()*1e3, "virt-ms/exchange")
	b.ReportMetric(float64(st.TotalBytes)/1e6, "MB/exchange")
}

func ladderOpts(nodes, ranks, edge int, caps exchange.Capabilities, ca bool) exchange.Options {
	return exchange.Options{
		Nodes:        nodes,
		RanksPerNode: ranks,
		Domain:       part.Dim3{X: edge, Y: edge, Z: edge},
		Radius:       2,
		Quantities:   4,
		ElemSize:     4,
		Caps:         caps,
		CUDAAware:    ca,
		NodeAware:    true,
	}
}

// BenchmarkFig3PartitionVolume regenerates Fig 3: total communication volume
// of cubical versus sliced partitions.
func BenchmarkFig3PartitionVolume(b *testing.B) {
	domain := part.Dim3{X: 36, Y: 36, Z: 1}
	for _, g := range []part.Dim3{{X: 2, Y: 2, Z: 1}, {X: 4, Y: 1, Z: 1}, {X: 3, Y: 3, Z: 1}, {X: 9, Y: 1, Z: 1}} {
		g := g
		b.Run(fmt.Sprintf("%dx%d", g.X, g.Y), func(b *testing.B) {
			var v int
			for i := 0; i < b.N; i++ {
				v = part.CommVolume(domain, g, 1)
			}
			b.ReportMetric(float64(v), "halo-cells")
		})
	}
}

// BenchmarkFig9Overlap regenerates the Fig 9 scenario: one overlapped
// exchange of 512^3-per-GPU subdomains with 4 SP quantities on one rank
// driving two GPUs.
func BenchmarkFig9Overlap(b *testing.B) {
	nodeCfg := machine.NodeConfig{Sockets: 2, GPUsPerSocket: 1}
	opts := exchange.Options{
		Nodes:        1,
		RanksPerNode: 1,
		Domain:       part.Dim3{X: 1024, Y: 512, Z: 512},
		Radius:       2,
		Quantities:   4,
		ElemSize:     4,
		Caps:         exchange.CapsAll(),
		NodeAware:    true,
		NodeConfig:   &nodeCfg,
	}
	benchExchange(b, opts)
}

// BenchmarkFig10Topology regenerates Table I / Fig 10: node topology
// discovery and the bandwidth matrix.
func BenchmarkFig10Topology(b *testing.B) {
	eng := sim.NewEngine()
	m := machine.NewSummit(eng, 1)
	b.Run("discover", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			nvml.Discover(m.Nodes[0])
		}
	})
	b.Run("measure", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e2 := sim.NewEngine()
			m2 := machine.NewSummit(e2, 1)
			rt := cudart.NewRuntime(m2, false)
			nvml.MeasureBandwidth(rt, 0, 64<<20)
		}
	})
}

// BenchmarkFig11Placement regenerates §IV-B: the worst-case-aspect domain
// under node-aware versus trivial placement (paper: ~20% speedup).
func BenchmarkFig11Placement(b *testing.B) {
	for _, aware := range []bool{true, false} {
		name := "node-aware"
		if !aware {
			name = "trivial"
		}
		aware := aware
		b.Run(name, func(b *testing.B) {
			benchExchange(b, exchange.Options{
				Nodes:        1,
				RanksPerNode: 6,
				Domain:       part.Dim3{X: 1440, Y: 1452, Z: 700},
				Radius:       2,
				Quantities:   4,
				ElemSize:     4,
				Caps:         exchange.CapsAll(),
				NodeAware:    aware,
			})
		})
	}
}

// BenchmarkFig12aSingleNode regenerates the single-node specialization
// sweep: ranks x capability ladder, with and without CUDA-aware MPI.
func BenchmarkFig12aSingleNode(b *testing.B) {
	edge := figures.CubeEdge(6)
	for _, ca := range []bool{false, true} {
		for _, ranks := range []int{1, 2, 6} {
			for _, caps := range figures.Ladder {
				opts := ladderOpts(1, ranks, edge, caps, ca)
				b.Run(opts.ConfigString()+"/"+opts.CapsString(), func(b *testing.B) {
					benchExchange(b, opts)
				})
			}
		}
	}
}

// BenchmarkFig12bWeakScaling regenerates weak scaling without CUDA-aware
// MPI (paper: to 256 nodes; here to 4 by default — see cmd/stencilbench).
func BenchmarkFig12bWeakScaling(b *testing.B) {
	for nodes := 1; nodes <= 4; nodes *= 2 {
		edge := figures.CubeEdge(nodes * 6)
		for _, caps := range figures.Ladder {
			opts := ladderOpts(nodes, 6, edge, caps, false)
			b.Run(opts.ConfigString()+"/"+opts.CapsString(), func(b *testing.B) {
				benchExchange(b, opts)
			})
		}
	}
}

// BenchmarkFig12cWeakScalingCA regenerates weak scaling with CUDA-aware MPI
// (paper: severe degradation with node count).
func BenchmarkFig12cWeakScalingCA(b *testing.B) {
	for nodes := 1; nodes <= 4; nodes *= 2 {
		edge := figures.CubeEdge(nodes * 6)
		for _, caps := range []exchange.Capabilities{exchange.CapsRemote(), exchange.CapsAll()} {
			opts := ladderOpts(nodes, 6, edge, caps, true)
			b.Run(opts.ConfigString()+"/"+opts.CapsString(), func(b *testing.B) {
				benchExchange(b, opts)
			})
		}
	}
}

// BenchmarkFig13StrongScaling regenerates strong scaling: the largest
// single-node domain spread over increasing node counts.
func BenchmarkFig13StrongScaling(b *testing.B) {
	edge := figures.CubeEdge(6)
	for nodes := 1; nodes <= 4; nodes *= 2 {
		for _, caps := range []exchange.Capabilities{exchange.CapsRemote(), exchange.CapsAll()} {
			opts := ladderOpts(nodes, 6, edge, caps, false)
			b.Run(opts.ConfigString()+"/"+opts.CapsString(), func(b *testing.B) {
				benchExchange(b, opts)
			})
		}
	}
}

// BenchmarkAblationNoContention removes link contention (all shared-facility
// bandwidths inflated 100x) to show the STAGED-vs-specialized gap collapses:
// contention on host memory, copy engines, and the SMP bus is what makes
// staging slow, not path length alone.
func BenchmarkAblationNoContention(b *testing.B) {
	edge := figures.CubeEdge(6)
	uncontended := machine.DefaultParams()
	uncontended.HostMemBW *= 100
	uncontended.ShmCopyBW *= 100
	uncontended.XBusBW *= 100
	for _, tc := range []struct {
		name   string
		params *machine.Params
	}{
		{"contended", nil},
		{"uncontended", &uncontended},
	} {
		for _, caps := range []exchange.Capabilities{exchange.CapsRemote(), exchange.CapsAll()} {
			opts := ladderOpts(1, 6, edge, caps, false)
			opts.Params = tc.params
			b.Run(tc.name+"/"+opts.CapsString(), func(b *testing.B) {
				benchExchange(b, opts)
			})
		}
	}
}

// BenchmarkAblationFlatPartition compares the hierarchical (node-then-GPU)
// decomposition against a flat one-level decomposition: the flat grid can
// reduce total surface slightly but pushes more bytes across the slow
// inter-node links, which is what the hierarchy minimizes (§III-A).
func BenchmarkAblationFlatPartition(b *testing.B) {
	const nodes, gpus = 8, 6
	for _, tc := range []struct {
		name   string
		domain part.Dim3
	}{
		// On a cube the two are nearly tied; on elongated domains the flat
		// decomposition pushes 2-4x more bytes across the inter-node links.
		{"cube", part.Dim3{X: 2726, Y: 2726, Z: 2726}},
		{"elongated", part.Dim3{X: 5452, Y: 2726, Z: 1363}},
	} {
		b.Run(tc.name+"/hierarchical", func(b *testing.B) {
			var offNode int64
			for i := 0; i < b.N; i++ {
				offNode = offNodeBytesHier(tc.domain, nodes, gpus)
			}
			b.ReportMetric(float64(offNode)/1e6, "offnode-MB")
		})
		b.Run(tc.name+"/flat", func(b *testing.B) {
			var offNode int64
			for i := 0; i < b.N; i++ {
				offNode = offNodeBytesFlat(tc.domain, nodes, gpus)
			}
			b.ReportMetric(float64(offNode)/1e6, "offnode-MB")
		})
	}
}

// BenchmarkAblationSerialExchange quantifies §III-D: disabling the overlap
// machinery (transfers driven to completion one at a time) versus the full
// asynchronous exchange.
func BenchmarkAblationSerialExchange(b *testing.B) {
	edge := figures.CubeEdge(6)
	for _, serial := range []bool{false, true} {
		name := "overlapped"
		if serial {
			name = "serial"
		}
		opts := ladderOpts(1, 6, edge, exchange.CapsAll(), false)
		opts.NoOverlap = serial
		b.Run(name, func(b *testing.B) {
			benchExchange(b, opts)
		})
	}
}

// BenchmarkAblationAggregation evaluates the §VI extension: one aggregated
// MPI message per rank pair versus one message per direction, on a
// multi-node STAGED exchange.
func BenchmarkAblationAggregation(b *testing.B) {
	edge := figures.CubeEdge(4 * 6)
	for _, agg := range []bool{false, true} {
		name := "per-direction"
		if agg {
			name = "aggregated"
		}
		opts := ladderOpts(4, 6, edge, exchange.CapsAll(), false)
		opts.AggregateRemote = agg
		b.Run(name, func(b *testing.B) {
			benchExchange(b, opts)
		})
	}
}

// BenchmarkAblationEmpiricalPlacement compares placement driven by the
// vendor topology query against placement driven by a congestion-aware
// bandwidth measurement pass (§VI).
func BenchmarkAblationEmpiricalPlacement(b *testing.B) {
	for _, empirical := range []bool{false, true} {
		name := "theoretical"
		if empirical {
			name = "empirical"
		}
		opts := exchange.Options{
			Nodes:              1,
			RanksPerNode:       6,
			Domain:             part.Dim3{X: 1440, Y: 1452, Z: 700},
			Radius:             2,
			Quantities:         4,
			ElemSize:           4,
			Caps:               exchange.CapsAll(),
			NodeAware:          true,
			EmpiricalPlacement: empirical,
		}
		b.Run(name, func(b *testing.B) {
			benchExchange(b, opts)
		})
	}
}

// offNodeBytesHier sums inter-node halo bytes under the hierarchical
// decomposition.
func offNodeBytesHier(domain part.Dim3, nodes, gpus int) int64 {
	h, err := part.NewHier(domain, nodes, gpus)
	if err != nil {
		panic(err)
	}
	var total int64
	for n := 0; n < nodes; n++ {
		ni := h.NodeIndex(n)
		for g := 0; g < gpus; g++ {
			gi := h.GPUIndex(g)
			_, size := h.Subdomain(ni, gi)
			global := h.GlobalIndex(ni, gi)
			for _, dir := range part.Directions26() {
				nbNode, _ := h.Split(h.Neighbor(global, dir))
				if nbNode != ni {
					total += int64(part.HaloCells(size, dir, 2)) * 4 * 4
				}
			}
		}
	}
	return total
}

// offNodeBytesFlat sums inter-node halo bytes when the domain is partitioned
// in one flat step and subdomains are dealt to nodes in linear order.
func offNodeBytesFlat(domain part.Dim3, nodes, gpus int) int64 {
	grid := part.Grid(domain, nodes*gpus)
	sub := part.Dim3{X: domain.X / grid.X, Y: domain.Y / grid.Y, Z: domain.Z / grid.Z}
	rank := func(g part.Dim3) int { return g.X + grid.X*(g.Y+grid.Y*g.Z) }
	wrap := func(v, n int) int { return ((v % n) + n) % n }
	var total int64
	for z := 0; z < grid.Z; z++ {
		for y := 0; y < grid.Y; y++ {
			for x := 0; x < grid.X; x++ {
				me := part.Dim3{X: x, Y: y, Z: z}
				for _, dir := range part.Directions26() {
					nb := part.Dim3{X: wrap(x+dir.X, grid.X), Y: wrap(y+dir.Y, grid.Y), Z: wrap(z+dir.Z, grid.Z)}
					if rank(me)/gpus != rank(nb)/gpus {
						total += int64(part.HaloCells(sub, dir, 2)) * 4 * 4
					}
				}
			}
		}
	}
	return total
}
